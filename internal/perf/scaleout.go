package perf

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/nn"
)

// EvaluateMultiChip models a scale-out deployment: n identical Albireo
// chips, each with its own laser bank and signal-generation path,
// splitting a layer's kernels between them (the natural extension of
// the paper's kernel-parallel broadcast - Section III-C notes more
// PLCGs raise parallelism at proportional area and power). Inputs are
// replicated to every chip electronically, so there is no cross-chip
// optical path; each chip behaves exactly like the single-chip design
// with its share of the kernels.
func EvaluateMultiChip(cfg core.Config, model nn.Model, chips int) Result {
	if chips < 1 {
		chips = 1
	}
	// Latency: kernels split across chips*Ng PLCGs.
	latCfg := cfg
	latCfg.Ng = cfg.Ng * chips
	lat := latCfg.MapModel(model).Latency()

	// Power and area: n full chips (each keeps its own 63-laser bank
	// and distribution fabric - the census does not dilute).
	census := NewCensus(cfg)
	power := census.Power(cfg.Estimate).Total() * float64(chips)
	area := census.Area().Total() * float64(chips)
	active := census.ActiveArea() * float64(chips)

	energy := power * lat
	return Result{
		Model:      model.Name,
		Design:     fmt.Sprintf("Albireo-%s x%d (Ng=%d each)", cfg.Estimate, chips, cfg.Ng),
		Latency:    lat,
		Energy:     energy,
		EDP:        energy * lat,
		Power:      power,
		MACs:       model.TotalMACs(),
		Area:       area,
		ActiveArea: active,
	}
}

// ShardLatencyTicks prices a single sharded inference on a pool in
// the fleet's virtual-time service model. The of residue classes are
// apportioned across the workers by core.PartitionShards over their
// routing weights (healthy-PLCU counts, so a degraded chip holds a
// narrower window), every shard executes concurrently, and the merge
// barrier completes when the widest window does. A window of count
// classes costs programTicks + ceil(requestTicks*count/of): weight
// programming is paid once per chip regardless of the window, which
// is exactly why the speedup saturates below the pool count. Mirrors
// fleet.ServiceModel.ShardTicks plus the placement policy, including
// the fleet's refusal to fan out below two non-empty windows (the
// whole-request path then prices as one plain single-request batch).
func ShardLatencyTicks(programTicks, requestTicks int64, of int, weights []int64) int64 {
	base := programTicks + requestTicks
	if base < 1 {
		base = 1
	}
	if of <= 0 || len(weights) == 0 {
		return base
	}
	placed := 0
	var worst int64
	for _, win := range core.PartitionShards(of, weights) {
		if win.Count <= 0 {
			continue
		}
		placed++
		work := (requestTicks*int64(win.Count) + int64(of) - 1) / int64(of)
		if d := programTicks + work; d > worst {
			worst = d
		}
	}
	if placed < 2 {
		return base
	}
	if worst < 1 {
		worst = 1
	}
	return worst
}

// ShardSpeedup is the analytic single-inference speedup of the
// kernel-group fan-out over whole-request dispatch on the same pool:
// BatchTicks(1) / ShardLatencyTicks. It is a pure function of the
// service model, the shard modulus, and the placement weights, and it
// is cross-validated against the measured fleet in
// scaleout_shard_test.go.
func ShardSpeedup(programTicks, requestTicks int64, of int, weights []int64) float64 {
	base := programTicks + requestTicks
	if base < 1 {
		base = 1
	}
	return float64(base) / float64(ShardLatencyTicks(programTicks, requestTicks, of, weights))
}

// ScaleOutCurve evaluates 1..maxChips and returns the results, for
// strong-scaling studies.
func ScaleOutCurve(cfg core.Config, model nn.Model, maxChips int) []Result {
	out := make([]Result, 0, maxChips)
	for n := 1; n <= maxChips; n++ {
		out = append(out, EvaluateMultiChip(cfg, model, n))
	}
	return out
}

// ScalingEfficiency returns the strong-scaling efficiency of the last
// point of a curve: ideal speedup / achieved speedup ratio inverted,
// i.e. achieved/(chips * base).
func ScalingEfficiency(curve []Result) float64 {
	if len(curve) < 2 {
		return 1
	}
	base := curve[0].Latency
	last := curve[len(curve)-1]
	chips := float64(len(curve))
	achieved := base / last.Latency
	return achieved / chips
}
