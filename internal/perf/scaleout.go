package perf

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/nn"
)

// EvaluateMultiChip models a scale-out deployment: n identical Albireo
// chips, each with its own laser bank and signal-generation path,
// splitting a layer's kernels between them (the natural extension of
// the paper's kernel-parallel broadcast - Section III-C notes more
// PLCGs raise parallelism at proportional area and power). Inputs are
// replicated to every chip electronically, so there is no cross-chip
// optical path; each chip behaves exactly like the single-chip design
// with its share of the kernels.
func EvaluateMultiChip(cfg core.Config, model nn.Model, chips int) Result {
	if chips < 1 {
		chips = 1
	}
	// Latency: kernels split across chips*Ng PLCGs.
	latCfg := cfg
	latCfg.Ng = cfg.Ng * chips
	lat := latCfg.MapModel(model).Latency()

	// Power and area: n full chips (each keeps its own 63-laser bank
	// and distribution fabric - the census does not dilute).
	census := NewCensus(cfg)
	power := census.Power(cfg.Estimate).Total() * float64(chips)
	area := census.Area().Total() * float64(chips)
	active := census.ActiveArea() * float64(chips)

	energy := power * lat
	return Result{
		Model:      model.Name,
		Design:     fmt.Sprintf("Albireo-%s x%d (Ng=%d each)", cfg.Estimate, chips, cfg.Ng),
		Latency:    lat,
		Energy:     energy,
		EDP:        energy * lat,
		Power:      power,
		MACs:       model.TotalMACs(),
		Area:       area,
		ActiveArea: active,
	}
}

// ScaleOutCurve evaluates 1..maxChips and returns the results, for
// strong-scaling studies.
func ScaleOutCurve(cfg core.Config, model nn.Model, maxChips int) []Result {
	out := make([]Result, 0, maxChips)
	for n := 1; n <= maxChips; n++ {
		out = append(out, EvaluateMultiChip(cfg, model, n))
	}
	return out
}

// ScalingEfficiency returns the strong-scaling efficiency of the last
// point of a curve: ideal speedup / achieved speedup ratio inverted,
// i.e. achieved/(chips * base).
func ScalingEfficiency(curve []Result) float64 {
	if len(curve) < 2 {
		return 1
	}
	base := curve[0].Latency
	last := curve[len(curve)-1]
	chips := float64(len(curve))
	achieved := base / last.Latency
	return achieved / chips
}
