// Package perf does the accounting of the Albireo evaluation (paper
// Section IV): device census, chip power breakdown (Table III), area
// breakdown (Figure 9), and per-model latency/energy/EDP/throughput
// reporting (Table IV and Figure 8).
package perf

import (
	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/memory"
)

// Census counts every device on an Albireo chip for a given
// configuration. The counts reproduce the paper's figures for the
// 9-PLCG design: 2430 switching MRRs, 306 modulators (243 weight MZMs
// + 63 signal-generation modulators, hence "306 DACs"), 63 lasers, 45
// TIAs, and 45 ADCs (Section V and Table III; see DESIGN.md for the
// calibration).
type Census struct {
	Config core.Config

	SwitchingMRRs int // 2 * Nm * Nd per PLCU
	WeightMZMs    int // Nm per PLCU
	SignalGenMods int // one per distribution wavelength
	Lasers        int // one per distribution wavelength
	Photodiodes   int // 2 * Nd per PLCU (balanced pairs)
	TIAs          int // Nd per PLCG
	ADCs          int // Nd per PLCG
	DACs          int // weight MZMs + signal-generation modulators
	StarCouplers  int // KernelH per PLCU
	AWGs          int // one per PLCG
	YBranches     int // broadcast tree internal nodes
	KernelCaches  int // one per PLCG
	GlobalBuffers int
}

// NewCensus counts the devices of the configuration.
func NewCensus(cfg core.Config) Census {
	plcus := cfg.Nu * cfg.Ng
	return Census{
		Config:        cfg,
		SwitchingMRRs: 2 * cfg.Nm * cfg.Nd * plcus,
		WeightMZMs:    cfg.Nm * plcus,
		SignalGenMods: cfg.TotalWavelengths(),
		Lasers:        cfg.TotalWavelengths(),
		Photodiodes:   2 * cfg.Nd * plcus,
		TIAs:          cfg.Nd * cfg.Ng,
		ADCs:          cfg.Nd * cfg.Ng,
		DACs:          cfg.Nm*plcus + cfg.TotalWavelengths(),
		StarCouplers:  cfg.KernelH * plcus,
		AWGs:          cfg.Ng,
		YBranches:     maxInt(cfg.Ng-1, 0),
		KernelCaches:  cfg.Ng,
		GlobalBuffers: 1,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PowerBreakdown is one column of Table III: per-device-class power in
// watts.
type PowerBreakdown struct {
	Estimate device.Estimate
	MRR      float64 // switching MRR fabric
	MZM      float64 // weight MZMs + signal-generation modulators
	Laser    float64
	TIA      float64
	DAC      float64
	ADC      float64
	Cache    float64
}

// Total returns the chip power in watts.
func (p PowerBreakdown) Total() float64 {
	return p.MRR + p.MZM + p.Laser + p.TIA + p.DAC + p.ADC + p.Cache
}

// Power computes the Table III column for the census under the given
// device estimate. The paper prices the signal-generation modulators
// at the MZM rate (the Table III MZI row equals 306 devices; see
// DESIGN.md).
func (c Census) Power(e device.Estimate) PowerBreakdown {
	p := device.Powers(e)
	return PowerBreakdown{
		Estimate: e,
		MRR:      float64(c.SwitchingMRRs) * p.MRR,
		MZM:      float64(c.WeightMZMs+c.SignalGenMods) * p.MZM,
		Laser:    float64(c.Lasers) * p.Laser,
		TIA:      float64(c.TIAs) * p.TIA,
		DAC:      float64(c.DACs) * p.DAC,
		ADC:      float64(c.ADCs) * p.ADC,
		Cache:    device.Memory().CachePower,
	}
}

// AreaBreakdown is the Figure 9 area census in m^2 by component class.
type AreaBreakdown struct {
	AWG         float64
	StarCoupler float64
	MZM         float64
	MRR         float64
	Laser       float64
	Photodiode  float64
	YBranch     float64
	SRAM        float64
}

// Total returns the chip area in m^2.
func (a AreaBreakdown) Total() float64 {
	return a.AWG + a.StarCoupler + a.MZM + a.MRR + a.Laser + a.Photodiode + a.YBranch + a.SRAM
}

// Area computes the Figure 9 breakdown for the census using the Table
// II device footprints.
func (c Census) Area() AreaBreakdown {
	o := device.Optics()
	return AreaBreakdown{
		AWG:         float64(c.AWGs) * o.AWGArea,
		StarCoupler: float64(c.StarCouplers) * o.StarArea,
		MZM:         float64(c.WeightMZMs+c.SignalGenMods) * o.MZMArea,
		MRR:         float64(c.SwitchingMRRs+c.SignalGenMods) * o.RingArea,
		Laser:       float64(c.Lasers) * o.LaserArea,
		Photodiode:  float64(c.Photodiodes) * o.PDArea,
		YBranch:     float64(c.YBranches) * o.YBranchArea,
		SRAM: float64(c.GlobalBuffers)*memory.GlobalBuffer().Area +
			float64(c.KernelCaches)*memory.KernelCache().Area,
	}
}

// ActiveArea returns the chip area excluding the passive distribution
// devices (AWGs and star couplers), the paper's "active area only"
// normalization in Table IV.
func (c Census) ActiveArea() float64 {
	a := c.Area()
	return a.Total() - a.AWG - a.StarCoupler
}
