package perf

import (
	"strings"
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func TestMultiChipLatencyScales(t *testing.T) {
	base := EvaluateMultiChip(core.DefaultConfig(), nn.VGG16(), 1)
	quad := EvaluateMultiChip(core.DefaultConfig(), nn.VGG16(), 4)
	speedup := base.Latency / quad.Latency
	if speedup < 2.5 || speedup > 4.01 {
		t.Errorf("4-chip speedup = %.2f, want ~3-4 (ceiling effects)", speedup)
	}
	if quad.Power < 3.9*base.Power {
		t.Error("4 chips draw 4x the power")
	}
	// Energy roughly flat: more power, less time.
	ratio := quad.Energy / base.Energy
	if ratio < 0.8 || ratio > 1.7 {
		t.Errorf("4-chip energy ratio = %.2f, want ~1", ratio)
	}
	// EDP improves with scale-out (latency falls faster than energy
	// grows).
	if quad.EDP >= base.EDP {
		t.Error("scale-out should improve EDP on large models")
	}
}

func TestMultiChipSingleEqualsEvaluate(t *testing.T) {
	a := EvaluateMultiChip(core.DefaultConfig(), nn.AlexNet(), 1)
	b := Evaluate(core.DefaultConfig(), nn.AlexNet())
	if a.Latency != b.Latency || a.Power != b.Power {
		t.Error("1-chip scale-out must equal the single-chip evaluation")
	}
	if EvaluateMultiChip(core.DefaultConfig(), nn.AlexNet(), 0).Latency != b.Latency {
		t.Error("chips < 1 should clamp to 1")
	}
}

func TestScaleOutCurve(t *testing.T) {
	curve := ScaleOutCurve(core.DefaultConfig(), nn.VGG16(), 4)
	if len(curve) != 4 {
		t.Fatal("curve length")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Latency > curve[i-1].Latency {
			t.Error("latency must be non-increasing with chips")
		}
	}
	eff := ScalingEfficiency(curve)
	if eff <= 0.5 || eff > 1.0 {
		t.Errorf("VGG16 4-chip scaling efficiency = %.2f, want (0.5, 1]", eff)
	}
	if !strings.Contains(curve[3].Design, "x4") {
		t.Error("design label should carry the chip count")
	}
	if ScalingEfficiency(curve[:1]) != 1 {
		t.Error("degenerate curve efficiency is 1")
	}
}

func TestScaleOutSmallModelSaturates(t *testing.T) {
	// MobileNet's small layers saturate: the 8-chip efficiency falls
	// below a large model's.
	mob := ScalingEfficiency(ScaleOutCurve(core.DefaultConfig(), nn.MobileNet(), 8))
	vgg := ScalingEfficiency(ScaleOutCurve(core.DefaultConfig(), nn.VGG16(), 8))
	if mob >= vgg {
		t.Errorf("MobileNet efficiency %.2f should trail VGG16 %.2f", mob, vgg)
	}
}
