package perf

import (
	"fmt"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/units"
)

// Result is one network's evaluation on one Albireo design: the rows
// of Table IV and the bars of Figure 8.
type Result struct {
	Model      string
	Design     string
	Latency    float64 // seconds
	Energy     float64 // joules
	EDP        float64 // joule-seconds
	Power      float64 // watts
	MACs       int64
	Area       float64 // m^2, full chip
	ActiveArea float64 // m^2, excluding passive distribution
}

// GOPS returns throughput in giga-operations per second, where - as in
// the paper's Table IV - an operation is one MAC (see DESIGN.md).
func (r Result) GOPS() float64 {
	if r.Latency <= 0 {
		return 0
	}
	return float64(r.MACs) / r.Latency / units.Giga
}

// GOPSPerMM2 returns GOPS normalized by full chip area in mm^2.
func (r Result) GOPSPerMM2() float64 {
	if r.Area <= 0 {
		return 0
	}
	return r.GOPS() / (r.Area * units.Mega)
}

// GOPSPerMM2Active returns GOPS normalized by active area only
// (Table IV footnote c).
func (r Result) GOPSPerMM2Active() float64 {
	if r.ActiveArea <= 0 {
		return 0
	}
	return r.GOPS() / (r.ActiveArea * units.Mega)
}

// GOPSPerWattPerMM2 returns the Table IV efficiency metric
// GOPS/W/mm^2 over the full chip area.
func (r Result) GOPSPerWattPerMM2() float64 {
	if r.Power <= 0 {
		return 0
	}
	return r.GOPSPerMM2() / r.Power
}

// GOPSPerWattPerMM2Active is the active-area variant.
func (r Result) GOPSPerWattPerMM2Active() float64 {
	if r.Power <= 0 {
		return 0
	}
	return r.GOPSPerMM2Active() / r.Power
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s on %s: %.3f ms, %.2f mJ, %.3f mJ*ms",
		r.Model, r.Design, r.Latency*units.Kilo, r.Energy*units.Kilo, r.EDP*units.Mega)
}

// Evaluate runs the analytic model for one network on one Albireo
// configuration: latency from the Algorithm 2 mapping, energy as chip
// power times latency (the accounting the paper's Table IV follows;
// see DESIGN.md), EDP as their product.
func Evaluate(cfg core.Config, model nn.Model) Result {
	mapping := cfg.MapModel(model)
	census := NewCensus(cfg)
	power := census.Power(cfg.Estimate).Total()
	lat := mapping.Latency()
	energy := power * lat
	return Result{
		Model:      model.Name,
		Design:     fmt.Sprintf("Albireo-%s (Ng=%d)", cfg.Estimate, cfg.Ng),
		Latency:    lat,
		Energy:     energy,
		EDP:        energy * lat,
		Power:      power,
		MACs:       model.TotalMACs(),
		Area:       census.Area().Total(),
		ActiveArea: census.ActiveArea(),
	}
}

// EvaluateAll evaluates every benchmark network on the configuration.
func EvaluateAll(cfg core.Config) []Result {
	models := nn.Benchmarks()
	out := make([]Result, 0, len(models))
	for _, m := range models {
		out = append(out, Evaluate(cfg, m))
	}
	return out
}

// LayerResult is a per-layer line of the per-layer analysis
// (Section IV-A: "we perform a per-layer analysis to yield latency,
// energy, and EDP").
type LayerResult struct {
	Layer   nn.Layer
	Cycles  int64
	Latency float64
	Energy  float64
	MACs    int64
}

// EvaluateLayers returns the per-layer breakdown for a network.
func EvaluateLayers(cfg core.Config, model nn.Model) []LayerResult {
	census := NewCensus(cfg)
	power := census.Power(cfg.Estimate).Total()
	rate := cfg.ModulationRate()
	var out []LayerResult
	for _, l := range model.Layers {
		if !l.HasMACs() {
			continue
		}
		lm := cfg.MapLayer(l)
		lat := float64(lm.Cycles) / rate
		out = append(out, LayerResult{
			Layer:   l,
			Cycles:  lm.Cycles,
			Latency: lat,
			Energy:  power * lat,
			MACs:    l.MACs(),
		})
	}
	return out
}
