package nn

import (
	"fmt"
	"math"

	"albireo/internal/tensor"
)

// The GEMM workload zoo: MLP heads, an LSTM cell, and a single-head
// attention block, all expressed over a pluggable GEMM executor so the
// same forward pass runs on the exact digital reference, a single
// analog chip (*core.Chip), any inference.Backend, or a fleet-bound
// backend. Everything that is not a matrix product - bias adds, gate
// nonlinearities, the attention softmax - runs digitally, as the
// aggregation unit would.

// GEMMExecutor executes matrix products. *core.Chip and every
// inference.Backend satisfy it.
type GEMMExecutor interface {
	GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix
}

// ExactGEMM is the float64 digital reference executor.
type ExactGEMM struct{}

// GEMM computes the exact product, applying ReLU when asked.
func (ExactGEMM) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	out := tensor.MatMul(a, b)
	if relu {
		tensor.ReLUMat(out)
	}
	return out
}

// MLP is a stack of fully-connected GEMM layers with bias and ReLU
// between hidden layers (none after the last: it emits logits).
type MLP struct {
	Name string
	// Weights[i] is the layer-i matrix, in-features x out-features.
	Weights []*tensor.Matrix
	// Biases[i] has one entry per layer-i output feature.
	Biases [][]float64
}

// NewMLP builds a deterministic random MLP through the given feature
// dims (len >= 2: input, hiddens..., output).
func NewMLP(name string, dims []int, seed int64) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims") //lint:ignore exit-hygiene constructor precondition; caller bug
	}
	m := &MLP{Name: name}
	for i := 0; i+1 < len(dims); i++ {
		w := tensor.RandomMatrix(dims[i], dims[i+1], seed+int64(i))
		// Fan-in scaling keeps activations in a trained-network-like
		// range across depth.
		w.Scale(1 / math.Sqrt(float64(dims[i])))
		m.Weights = append(m.Weights, w)
		b := make([]float64, dims[i+1])
		brng := tensor.RandomMatrix(1, dims[i+1], seed+1000+int64(i))
		copy(b, brng.Data)
		for j := range b {
			b[j] *= 0.1
		}
		m.Biases = append(m.Biases, b)
	}
	return m
}

// Forward runs a batch of rows through the MLP on the executor.
func (m *MLP) Forward(be GEMMExecutor, x *tensor.Matrix) *tensor.Matrix {
	h := x
	for i, w := range m.Weights {
		h = be.GEMM(h, w, false)
		h.AddBias(m.Biases[i])
		if i < len(m.Weights)-1 {
			tensor.ReLUMat(h)
		}
	}
	return h
}

// Layers returns the mapper-level description of the MLP for a batch
// of rows rows.
func (m *MLP) Layers(rows int) []Layer {
	out := make([]Layer, len(m.Weights))
	for i, w := range m.Weights {
		out[i] = Layer{
			Name: fmt.Sprintf("%s/gemm%d", m.Name, i),
			Kind: GEMM,
			InZ:  w.R, InY: 1, InX: rows,
			OutZ: w.C, KY: 1, KX: 1,
		}
	}
	return out
}

// LSTM is one recurrent cell: input size InSize, hidden size Hidden,
// the four gates (input, forget, cell, output) stacked column-wise in
// Wx and Wh.
type LSTM struct {
	Name   string
	InSize int
	Hidden int
	// Wx is InSize x 4*Hidden, Wh is Hidden x 4*Hidden.
	Wx, Wh *tensor.Matrix
	// B has 4*Hidden entries.
	B []float64
}

// NewLSTM builds a deterministic random LSTM cell.
func NewLSTM(name string, inSize, hidden int, seed int64) *LSTM {
	wx := tensor.RandomMatrix(inSize, 4*hidden, seed)
	wx.Scale(1 / math.Sqrt(float64(inSize)))
	wh := tensor.RandomMatrix(hidden, 4*hidden, seed+1)
	wh.Scale(1 / math.Sqrt(float64(hidden)))
	b := make([]float64, 4*hidden)
	brng := tensor.RandomMatrix(1, 4*hidden, seed+2)
	for j := range b {
		b[j] = brng.Data[j] * 0.1
	}
	return &LSTM{Name: name, InSize: inSize, Hidden: hidden, Wx: wx, Wh: wh, B: b}
}

// gate extracts gate g (0..3) as a batch x Hidden matrix.
func (l *LSTM) gate(gates *tensor.Matrix, g int) *tensor.Matrix {
	out := tensor.NewMatrix(gates.R, l.Hidden)
	for r := 0; r < gates.R; r++ {
		copy(out.Data[r*l.Hidden:(r+1)*l.Hidden],
			gates.Data[r*gates.C+g*l.Hidden:r*gates.C+(g+1)*l.Hidden])
	}
	return out
}

// Step advances the cell one timestep: x is batch x InSize, h and c
// are batch x Hidden (nil means the zero state). The two gate products
// run on the executor; sigmoids, tanhs, and the elementwise combines
// are digital.
func (l *LSTM) Step(be GEMMExecutor, x, h, c *tensor.Matrix) (hNext, cNext *tensor.Matrix) {
	if h == nil {
		h = tensor.NewMatrix(x.R, l.Hidden)
	}
	if c == nil {
		c = tensor.NewMatrix(x.R, l.Hidden)
	}
	gates := tensor.AddMat(be.GEMM(x, l.Wx, false), be.GEMM(h, l.Wh, false)).AddBias(l.B)
	in := tensor.SigmoidMat(l.gate(gates, 0))
	forget := tensor.SigmoidMat(l.gate(gates, 1))
	cell := tensor.TanhMat(l.gate(gates, 2))
	out := tensor.SigmoidMat(l.gate(gates, 3))
	cNext = tensor.AddMat(tensor.MulMat(forget, c), tensor.MulMat(in, cell))
	hNext = tensor.MulMat(out, tensor.TanhMat(cNext.Clone()))
	return hNext, cNext
}

// Run unrolls the cell over a sequence of inputs from the zero state
// and returns the final hidden and cell states.
func (l *LSTM) Run(be GEMMExecutor, xs []*tensor.Matrix) (h, c *tensor.Matrix) {
	for _, x := range xs {
		h, c = l.Step(be, x, h, c)
	}
	return h, c
}

// Layer returns the mapper-level description of the cell unrolled over
// seqLen timesteps.
func (l *LSTM) Layer(seqLen int) Layer {
	return Layer{
		Name: l.Name,
		Kind: LSTMCell,
		InZ:  l.InSize, InY: 1, InX: seqLen,
		OutZ: l.Hidden, KY: 1, KX: 1,
	}
}

// Attention computes single-head scaled dot-product attention
// softmax(Q K^T / sqrt(d)) V for T x d inputs: QK^T and the AV product
// run on the executor, the scaling and row softmax are digital.
func Attention(be GEMMExecutor, q, k, v *tensor.Matrix) *tensor.Matrix {
	if q.C != k.C || k.R != v.R {
		panic("nn: attention shape mismatch") //lint:ignore exit-hygiene attention shape invariant; caller bug
	}
	scores := be.GEMM(q, k.Transpose(), false)
	scores.Scale(1 / math.Sqrt(float64(q.C)))
	tensor.SoftmaxRows(scores)
	return be.GEMM(scores, v, false)
}

// AttentionLayer returns the mapper-level description of an attention
// block over a seqLen-long sequence of dim-dimensional states.
func AttentionLayer(name string, seqLen, dim int) Layer {
	return Layer{
		Name: name,
		Kind: AttentionBlock,
		InZ:  dim, InY: 1, InX: seqLen,
		OutZ: dim, KY: 1, KX: 1,
	}
}
