package nn

import (
	"testing"
)

func TestAllModelsValidate(t *testing.T) {
	for _, m := range Benchmarks() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestAlexNetMACs(t *testing.T) {
	// Canonical grouped AlexNet is ~724M MACs; the paper's Table IV
	// GOPS/mm^2 figure (44.7 at 0.13 ms over 124.6 mm^2) back-derives
	// exactly this count (see DESIGN.md).
	m := AlexNet()
	got := m.TotalMACs()
	if got < 700e6 || got > 750e6 {
		t.Errorf("AlexNet MACs = %d, want ~724M", got)
	}
	// ~61M parameters.
	if p := m.TotalParams(); p < 55e6 || p > 65e6 {
		t.Errorf("AlexNet params = %d, want ~61M", p)
	}
}

func TestVGG16MACs(t *testing.T) {
	m := VGG16()
	got := m.TotalMACs()
	// The canonical 15.47 GMACs.
	if got < 15.3e9 || got > 15.6e9 {
		t.Errorf("VGG16 MACs = %d, want ~15.47G", got)
	}
	// ~138M parameters.
	if p := m.TotalParams(); p < 130e6 || p > 145e6 {
		t.Errorf("VGG16 params = %d, want ~138M", p)
	}
}

func TestResNet18MACs(t *testing.T) {
	m := ResNet18()
	got := m.TotalMACs()
	// Canonical ~1.81 GMACs.
	if got < 1.75e9 || got > 1.9e9 {
		t.Errorf("ResNet18 MACs = %d, want ~1.81G", got)
	}
	// ~11M parameters (no BN).
	if p := m.TotalParams(); p < 10e6 || p > 12.5e6 {
		t.Errorf("ResNet18 params = %d, want ~11M", p)
	}
}

func TestMobileNetMACs(t *testing.T) {
	m := MobileNet()
	got := m.TotalMACs()
	// Canonical ~569M MACs.
	if got < 550e6 || got > 590e6 {
		t.Errorf("MobileNet MACs = %d, want ~569M", got)
	}
	// ~4.2M parameters.
	if p := m.TotalParams(); p < 3.8e6 || p > 4.6e6 {
		t.Errorf("MobileNet params = %d, want ~4.2M", p)
	}
}

func TestLayerShapes(t *testing.T) {
	// AlexNet conv1: 224 input, 11x11 s4 p2 -> 55x55.
	l := AlexNet().Layers[0]
	if l.OutY() != 55 || l.OutX() != 55 {
		t.Errorf("AlexNet conv1 output %dx%d, want 55x55", l.OutY(), l.OutX())
	}
	// VGG conv layers preserve spatial dims.
	v := VGG16().Layers[0]
	if v.OutY() != 224 || v.OutX() != 224 {
		t.Error("VGG same-padding conv should preserve 224")
	}
	// FC output is 1x1.
	fc := AlexNet().Layers[8]
	if fc.OutY() != 1 || fc.OutX() != 1 {
		t.Error("FC spatial output should be 1x1")
	}
}

func TestGroupedLayerMACs(t *testing.T) {
	// AlexNet conv2: 27x27x256 out, 5x5 kernel over 96/2 channels.
	var conv2 Layer
	for _, l := range AlexNet().Layers {
		if l.Name == "conv2" {
			conv2 = l
		}
	}
	want := int64(27*27) * 256 * 25 * 48
	if conv2.MACs() != want {
		t.Errorf("conv2 MACs = %d, want %d", conv2.MACs(), want)
	}
}

func TestDepthwisePointwiseMACs(t *testing.T) {
	m := MobileNet()
	var dw, pw Layer
	for _, l := range m.Layers {
		if l.Name == "dw1" {
			dw = l
		}
		if l.Name == "pw1" {
			pw = l
		}
	}
	if dw.MACs() != int64(112*112)*32*9 {
		t.Errorf("dw1 MACs = %d", dw.MACs())
	}
	if pw.MACs() != int64(112*112)*64*32 {
		t.Errorf("pw1 MACs = %d", pw.MACs())
	}
	if dw.Params() != 32*9 || pw.Params() != 64*32 {
		t.Error("depthwise/pointwise parameter counts")
	}
}

func TestPoolingLayersHaveNoMACs(t *testing.T) {
	for _, m := range Benchmarks() {
		for _, l := range m.Layers {
			if (l.Kind == MaxPoolKind || l.Kind == AvgPoolKind) && l.HasMACs() {
				t.Errorf("%s/%s: pooling should carry no MACs", m.Name, l.Name)
			}
		}
	}
}

func TestComputeLayers(t *testing.T) {
	m := VGG16()
	cl := m.ComputeLayers()
	if len(cl) != 16 {
		t.Errorf("VGG16 should have 16 compute layers, got %d", len(cl))
	}
	var sum int64
	for _, l := range cl {
		sum += l.MACs()
	}
	if sum != m.TotalMACs() {
		t.Error("compute layers must carry all MACs")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("VGG16"); !ok {
		t.Error("VGG16 should be found")
	}
	if _, ok := ByName("LeNet"); ok {
		t.Error("unknown model should not be found")
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	m := Model{Name: "broken", Layers: []Layer{
		{Name: "a", Kind: Conv, InZ: 3, InY: 8, InX: 8, OutZ: 4, KY: 3, KX: 3, Pad: 1},
		{Name: "b", Kind: Conv, InZ: 5, InY: 8, InX: 8, OutZ: 4, KY: 3, KX: 3, Pad: 1},
	}}
	if err := m.Validate(); err == nil {
		t.Error("channel mismatch should fail validation")
	}
	m2 := Model{Name: "brokenfc", Layers: []Layer{
		{Name: "a", Kind: Conv, InZ: 3, InY: 8, InX: 8, OutZ: 4, KY: 3, KX: 3, Pad: 1},
		{Name: "fc", Kind: FC, InZ: 4, InY: 9, InX: 9, OutZ: 10, KY: 1, KX: 1},
	}}
	if err := m2.Validate(); err == nil {
		t.Error("FC flatten mismatch should fail validation")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{Conv, Depthwise, Pointwise, FC, MaxPoolKind, AvgPoolKind, Kind(99)}
	want := []string{"conv", "dwconv", "pwconv", "fc", "maxpool", "avgpool", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %s, want %s", int(k), k.String(), want[i])
		}
	}
	if AlexNet().Layers[0].String() == "" {
		t.Error("layer String")
	}
}

func TestResNetBranchLayers(t *testing.T) {
	m := ResNet18()
	var branches int
	for _, l := range m.Layers {
		if l.Branch {
			branches++
			if l.KY != 1 || l.Stride != 2 {
				t.Error("downsample shortcuts are 1x1 stride-2 convs")
			}
		}
	}
	if branches != 3 {
		t.Errorf("ResNet18 should have 3 downsample shortcuts, got %d", branches)
	}
}
