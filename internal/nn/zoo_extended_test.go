package nn

import "testing"

func TestVGG19Validates(t *testing.T) {
	m := VGG19()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Canonical ~19.6 GMACs and ~144M params.
	macs := m.TotalMACs()
	if macs < 19.4e9 || macs > 19.8e9 {
		t.Errorf("VGG19 MACs = %d, want ~19.6G", macs)
	}
	if p := m.TotalParams(); p < 138e6 || p > 148e6 {
		t.Errorf("VGG19 params = %d, want ~144M", p)
	}
	// 16 conv + 3 FC compute layers.
	if got := len(m.ComputeLayers()); got != 19 {
		t.Errorf("VGG19 compute layers = %d, want 19", got)
	}
}

func TestMobileNetV2Validates(t *testing.T) {
	m := MobileNetV2()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Canonical ~300M MACs (BN-free accounting) and ~3.4M params.
	macs := m.TotalMACs()
	if macs < 280e6 || macs > 330e6 {
		t.Errorf("MobileNetV2 MACs = %d, want ~300M", macs)
	}
	if p := m.TotalParams(); p < 3.0e6 || p > 3.8e6 {
		t.Errorf("MobileNetV2 params = %d, want ~3.4M", p)
	}
}

func TestMobileNetV2Structure(t *testing.T) {
	m := MobileNetV2()
	// 17 bottlenecks: 16 with expansion (3 layers) + 1 without
	// (2 layers) = 50 block layers, plus stem, head, pool, fc.
	var dw, pw int
	for _, l := range m.Layers {
		switch l.Kind {
		case Depthwise:
			dw++
		case Pointwise:
			pw++
		}
	}
	if dw != 17 {
		t.Errorf("depthwise layers = %d, want 17", dw)
	}
	// 16 expands + 17 projects + head.
	if pw != 34 {
		t.Errorf("pointwise layers = %d, want 34", pw)
	}
	// The final feature map is 7x7x320 before the head.
	var head Layer
	for _, l := range m.Layers {
		if l.Name == "conv_head" {
			head = l
		}
	}
	if head.InZ != 320 || head.InY != 7 {
		t.Errorf("head input %dx%dx%d, want 320x7x7", head.InZ, head.InY, head.InX)
	}
}

func TestExtendedLists(t *testing.T) {
	if len(Extended()) != 2 {
		t.Error("two extended models")
	}
	if len(AllModels()) != 6 {
		t.Error("six total models")
	}
}
