package nn

import "fmt"

// Extended model zoo: networks beyond the paper's four benchmarks,
// exercising the same layer kinds (VGG19's deeper plain stack,
// MobileNetV2's inverted residual bottlenecks). They feed the
// design-space tools and broaden the mapping model's coverage.

// VGG19 returns configuration E: 16 3x3 convolutions and 3 FC layers.
func VGG19() Model {
	var layers []Layer
	size := 224
	ch := 3
	addConv := func(name string, outZ int) {
		layers = append(layers, Layer{
			Name: name, Kind: Conv, InZ: ch, InY: size, InX: size,
			OutZ: outZ, KY: 3, KX: 3, Stride: 1, Pad: 1,
		})
		ch = outZ
	}
	addPool := func(name string) {
		layers = append(layers, Layer{
			Name: name, Kind: MaxPoolKind, InZ: ch, InY: size, InX: size,
			OutZ: ch, KY: 2, KX: 2, Stride: 2,
		})
		size /= 2
	}
	stage := func(idx, convs, outZ int) {
		for c := 1; c <= convs; c++ {
			addConv(fmt.Sprintf("conv%d_%d", idx, c), outZ)
		}
		addPool(fmt.Sprintf("pool%d", idx))
	}
	stage(1, 2, 64)
	stage(2, 2, 128)
	stage(3, 4, 256)
	stage(4, 4, 512)
	stage(5, 4, 512)
	layers = append(layers,
		Layer{Name: "fc1", Kind: FC, InZ: 512, InY: 7, InX: 7, OutZ: 4096, KY: 1, KX: 1},
		Layer{Name: "fc2", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 4096, KY: 1, KX: 1},
		Layer{Name: "fc3", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1},
	)
	return Model{Name: "VGG19", Layers: layers}
}

// MobileNetV2 returns the width-1.0 MobileNetV2: a strided stem,
// seventeen inverted-residual bottlenecks, the 1280-channel head,
// pooling, and the classifier. Each bottleneck expands with a 1x1
// pointwise conv (factor t), filters depthwise, and projects back with
// a linear 1x1 - all layer kinds the Section III-C mappings cover.
func MobileNetV2() Model {
	var layers []Layer
	size := 224
	ch := 0
	add := func(l Layer) { layers = append(layers, l) }

	// Stem.
	add(Layer{Name: "conv1", Kind: Conv, InZ: 3, InY: size, InX: size,
		OutZ: 32, KY: 3, KX: 3, Stride: 2, Pad: 1})
	size = 112
	ch = 32

	block := 0
	bottleneck := func(t, c, n, s int) {
		for i := 0; i < n; i++ {
			stride := 1
			if i == 0 {
				stride = s
			}
			block++
			hidden := ch * t
			if t != 1 {
				add(Layer{Name: fmt.Sprintf("b%d_expand", block), Kind: Pointwise,
					InZ: ch, InY: size, InX: size, OutZ: hidden, KY: 1, KX: 1})
			} else {
				hidden = ch
			}
			add(Layer{Name: fmt.Sprintf("b%d_dw", block), Kind: Depthwise,
				InZ: hidden, InY: size, InX: size, OutZ: hidden,
				KY: 3, KX: 3, Stride: stride, Pad: 1})
			size /= stride
			add(Layer{Name: fmt.Sprintf("b%d_project", block), Kind: Pointwise,
				InZ: hidden, InY: size, InX: size, OutZ: c, KY: 1, KX: 1})
			ch = c
		}
	}
	bottleneck(1, 16, 1, 1)
	bottleneck(6, 24, 2, 2)
	bottleneck(6, 32, 3, 2)
	bottleneck(6, 64, 4, 2)
	bottleneck(6, 96, 3, 1)
	bottleneck(6, 160, 3, 2)
	bottleneck(6, 320, 1, 1)

	add(Layer{Name: "conv_head", Kind: Pointwise, InZ: ch, InY: size, InX: size,
		OutZ: 1280, KY: 1, KX: 1})
	add(Layer{Name: "avgpool", Kind: AvgPoolKind, InZ: 1280, InY: size, InX: size,
		OutZ: 1280, KY: size, KX: size, Stride: 1})
	add(Layer{Name: "fc", Kind: FC, InZ: 1280, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1})
	return Model{Name: "MobileNetV2", Layers: layers}
}

// Extended returns the additional networks beyond the paper's four.
func Extended() []Model {
	return []Model{VGG19(), MobileNetV2()}
}

// AllModels returns the paper benchmarks plus the extended zoo.
func AllModels() []Model {
	return append(Benchmarks(), Extended()...)
}
