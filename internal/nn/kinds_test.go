package nn

import "testing"

// representativeLayers has one well-formed layer per Kind. The
// exhaustiveness tests below (and TestMapLayerCoversEveryKind in
// internal/core) iterate [0, NumKinds) against it, so adding a Kind
// without extending this table - or without String/MACs/MapLayer
// cases - fails CI instead of silently mapping to zero cycles.
func representativeLayers() map[Kind]Layer {
	return map[Kind]Layer{
		Conv:           {Name: "conv", Kind: Conv, InZ: 8, InY: 12, InX: 12, OutZ: 16, KY: 3, KX: 3, Stride: 1, Pad: 1},
		Depthwise:      {Name: "dw", Kind: Depthwise, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 3, KX: 3, Stride: 1, Pad: 1},
		Pointwise:      {Name: "pw", Kind: Pointwise, InZ: 8, InY: 12, InX: 12, OutZ: 16, KY: 1, KX: 1},
		FC:             {Name: "fc", Kind: FC, InZ: 64, InY: 1, InX: 1, OutZ: 10, KY: 1, KX: 1},
		MaxPoolKind:    {Name: "maxpool", Kind: MaxPoolKind, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 2, KX: 2, Stride: 2},
		AvgPoolKind:    {Name: "avgpool", Kind: AvgPoolKind, InZ: 8, InY: 12, InX: 12, OutZ: 8, KY: 2, KX: 2, Stride: 2},
		GEMM:           {Name: "gemm", Kind: GEMM, InZ: 32, InY: 1, InX: 16, OutZ: 24, KY: 1, KX: 1},
		LSTMCell:       {Name: "lstm", Kind: LSTMCell, InZ: 32, InY: 1, InX: 8, OutZ: 48, KY: 1, KX: 1},
		AttentionBlock: {Name: "attn", Kind: AttentionBlock, InZ: 32, InY: 1, InX: 16, OutZ: 32, KY: 1, KX: 1},
	}
}

// TestKindStringExhaustive fails when a Kind is added without a
// String case.
func TestKindStringExhaustive(t *testing.T) {
	t.Parallel()
	seen := map[string]Kind{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("Kind %d has no String case", int(k))
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("Kind %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	if Kind(NumKinds).String() != "unknown" {
		t.Fatal("NumKinds itself must stringify as unknown")
	}
}

// TestKindRepresentativesExhaustive fails when a Kind is added without
// a representative layer, and checks the MACs/Params accounting of the
// GEMM-family kinds.
func TestKindRepresentativesExhaustive(t *testing.T) {
	t.Parallel()
	reps := representativeLayers()
	for k := Kind(0); k < NumKinds; k++ {
		l, ok := reps[k]
		if !ok {
			t.Fatalf("no representative layer for kind %v: extend representativeLayers and the mapper", k)
		}
		if l.Kind != k {
			t.Fatalf("representative for %v has kind %v", k, l.Kind)
		}
		compute := k != MaxPoolKind && k != AvgPoolKind
		if compute != l.HasMACs() {
			t.Fatalf("kind %v: HasMACs() = %v, want %v", k, l.HasMACs(), compute)
		}
	}

	g := reps[GEMM]
	if got, want := g.MACs(), int64(16*32*24); got != want {
		t.Errorf("GEMM MACs = %d, want %d", got, want)
	}
	if got, want := g.Params(), int64(32*24); got != want {
		t.Errorf("GEMM Params = %d, want %d", got, want)
	}
	l := reps[LSTMCell]
	if got, want := l.MACs(), int64(8*4*48*(32+48)); got != want {
		t.Errorf("LSTM MACs = %d, want %d", got, want)
	}
	a := reps[AttentionBlock]
	if got, want := a.MACs(), int64(2*16*16*32); got != want {
		t.Errorf("attention MACs = %d, want %d", got, want)
	}
	if a.Params() != 0 {
		t.Errorf("attention Params = %d, want 0 (no weights of its own)", a.Params())
	}
	if g.OutY() != 1 || g.OutX() != 16 {
		t.Errorf("GEMM out = %dx%d, want 1x16", g.OutY(), g.OutX())
	}
}
