package nn

import "fmt"

// The model zoo: the four CNNs of the paper's evaluation (Section
// IV-A), all with 224x224x3 image inputs. Layer geometries follow the
// canonical publications the paper cites: AlexNet (Krizhevsky et al.),
// VGG16 configuration D (Simonyan & Zisserman), ResNet18 (He et al.),
// and MobileNet v1 at width 1.0 (Howard et al.).

// AlexNet returns the canonical grouped AlexNet. conv2, conv4, and
// conv5 use 2 groups as in the original two-GPU training split.
func AlexNet() Model {
	return Model{Name: "AlexNet", Layers: []Layer{
		{Name: "conv1", Kind: Conv, InZ: 3, InY: 224, InX: 224, OutZ: 96, KY: 11, KX: 11, Stride: 4, Pad: 2},
		{Name: "pool1", Kind: MaxPoolKind, InZ: 96, InY: 55, InX: 55, OutZ: 96, KY: 3, KX: 3, Stride: 2},
		{Name: "conv2", Kind: Conv, InZ: 96, InY: 27, InX: 27, OutZ: 256, KY: 5, KX: 5, Stride: 1, Pad: 2, Groups: 2},
		{Name: "pool2", Kind: MaxPoolKind, InZ: 256, InY: 27, InX: 27, OutZ: 256, KY: 3, KX: 3, Stride: 2},
		{Name: "conv3", Kind: Conv, InZ: 256, InY: 13, InX: 13, OutZ: 384, KY: 3, KX: 3, Stride: 1, Pad: 1},
		{Name: "conv4", Kind: Conv, InZ: 384, InY: 13, InX: 13, OutZ: 384, KY: 3, KX: 3, Stride: 1, Pad: 1, Groups: 2},
		{Name: "conv5", Kind: Conv, InZ: 384, InY: 13, InX: 13, OutZ: 256, KY: 3, KX: 3, Stride: 1, Pad: 1, Groups: 2},
		{Name: "pool5", Kind: MaxPoolKind, InZ: 256, InY: 13, InX: 13, OutZ: 256, KY: 3, KX: 3, Stride: 2},
		{Name: "fc6", Kind: FC, InZ: 256, InY: 6, InX: 6, OutZ: 4096, KY: 1, KX: 1},
		{Name: "fc7", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 4096, KY: 1, KX: 1},
		{Name: "fc8", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1},
	}}
}

// VGG16 returns configuration D: 13 3x3 convolutions and 3 FC layers.
func VGG16() Model {
	var layers []Layer
	addConv := func(name string, inZ, size, outZ int) {
		layers = append(layers, Layer{
			Name: name, Kind: Conv, InZ: inZ, InY: size, InX: size,
			OutZ: outZ, KY: 3, KX: 3, Stride: 1, Pad: 1,
		})
	}
	addPool := func(name string, z, size int) {
		layers = append(layers, Layer{
			Name: name, Kind: MaxPoolKind, InZ: z, InY: size, InX: size,
			OutZ: z, KY: 2, KX: 2, Stride: 2,
		})
	}
	addConv("conv1_1", 3, 224, 64)
	addConv("conv1_2", 64, 224, 64)
	addPool("pool1", 64, 224)
	addConv("conv2_1", 64, 112, 128)
	addConv("conv2_2", 128, 112, 128)
	addPool("pool2", 128, 112)
	addConv("conv3_1", 128, 56, 256)
	addConv("conv3_2", 256, 56, 256)
	addConv("conv3_3", 256, 56, 256)
	addPool("pool3", 256, 56)
	addConv("conv4_1", 256, 28, 512)
	addConv("conv4_2", 512, 28, 512)
	addConv("conv4_3", 512, 28, 512)
	addPool("pool4", 512, 28)
	addConv("conv5_1", 512, 14, 512)
	addConv("conv5_2", 512, 14, 512)
	addConv("conv5_3", 512, 14, 512)
	addPool("pool5", 512, 14)
	layers = append(layers,
		Layer{Name: "fc1", Kind: FC, InZ: 512, InY: 7, InX: 7, OutZ: 4096, KY: 1, KX: 1},
		Layer{Name: "fc2", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 4096, KY: 1, KX: 1},
		Layer{Name: "fc3", Kind: FC, InZ: 4096, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1},
	)
	return Model{Name: "VGG16", Layers: layers}
}

// ResNet18 returns the 18-layer residual network: a 7x7 stem, four
// stages of two basic blocks each, and the classifier. Downsample
// shortcuts are Branch layers.
func ResNet18() Model {
	var layers []Layer
	conv := func(name string, inZ, size, outZ, k, stride, pad int, branch bool) {
		layers = append(layers, Layer{
			Name: name, Kind: Conv, InZ: inZ, InY: size, InX: size,
			OutZ: outZ, KY: k, KX: k, Stride: stride, Pad: pad, Branch: branch,
		})
	}
	conv("conv1", 3, 224, 64, 7, 2, 3, false)
	layers = append(layers, Layer{
		Name: "pool1", Kind: MaxPoolKind, InZ: 64, InY: 112, InX: 112,
		OutZ: 64, KY: 3, KX: 3, Stride: 2, Pad: 1,
	})
	stage := func(idx, inZ, inSize, outZ int, downsample bool) {
		size := inSize
		stride := 1
		if downsample {
			stride = 2
			size = inSize // first conv consumes inSize at stride 2
		}
		outSize := inSize / stride
		// Block 1.
		conv(fmt.Sprintf("s%d_b1_conv1", idx), inZ, size, outZ, 3, stride, 1, false)
		conv(fmt.Sprintf("s%d_b1_conv2", idx), outZ, outSize, outZ, 3, 1, 1, false)
		if downsample {
			conv(fmt.Sprintf("s%d_b1_ds", idx), inZ, inSize, outZ, 1, 2, 0, true)
		}
		// Block 2.
		conv(fmt.Sprintf("s%d_b2_conv1", idx), outZ, outSize, outZ, 3, 1, 1, false)
		conv(fmt.Sprintf("s%d_b2_conv2", idx), outZ, outSize, outZ, 3, 1, 1, false)
	}
	stage(1, 64, 56, 64, false)
	stage(2, 64, 56, 128, true)
	stage(3, 128, 28, 256, true)
	stage(4, 256, 14, 512, true)
	layers = append(layers,
		Layer{Name: "avgpool", Kind: AvgPoolKind, InZ: 512, InY: 7, InX: 7, OutZ: 512, KY: 7, KX: 7, Stride: 1},
		Layer{Name: "fc", Kind: FC, InZ: 512, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1},
	)
	return Model{Name: "ResNet18", Layers: layers}
}

// MobileNet returns MobileNet v1 (width multiplier 1.0): a strided
// stem followed by 13 depthwise-separable blocks, average pooling, and
// the classifier. These are the depthwise and pointwise layers the
// paper's Section III-C mapping discussion targets.
func MobileNet() Model {
	var layers []Layer
	size := 224
	layers = append(layers, Layer{
		Name: "conv1", Kind: Conv, InZ: 3, InY: size, InX: size,
		OutZ: 32, KY: 3, KX: 3, Stride: 2, Pad: 1,
	})
	size = 112
	ch := 32
	block := func(idx, outZ, stride int) {
		layers = append(layers, Layer{
			Name: fmt.Sprintf("dw%d", idx), Kind: Depthwise, InZ: ch, InY: size, InX: size,
			OutZ: ch, KY: 3, KX: 3, Stride: stride, Pad: 1,
		})
		size /= stride
		layers = append(layers, Layer{
			Name: fmt.Sprintf("pw%d", idx), Kind: Pointwise, InZ: ch, InY: size, InX: size,
			OutZ: outZ, KY: 1, KX: 1, Stride: 1,
		})
		ch = outZ
	}
	block(1, 64, 1)
	block(2, 128, 2)
	block(3, 128, 1)
	block(4, 256, 2)
	block(5, 256, 1)
	block(6, 512, 2)
	for i := 7; i <= 11; i++ {
		block(i, 512, 1)
	}
	block(12, 1024, 2)
	block(13, 1024, 1)
	layers = append(layers,
		Layer{Name: "avgpool", Kind: AvgPoolKind, InZ: 1024, InY: 7, InX: 7, OutZ: 1024, KY: 7, KX: 7, Stride: 1},
		Layer{Name: "fc", Kind: FC, InZ: 1024, InY: 1, InX: 1, OutZ: 1000, KY: 1, KX: 1},
	)
	return Model{Name: "MobileNet", Layers: layers}
}

// Benchmarks returns the four evaluation networks in the paper's
// Figure 8 order.
func Benchmarks() []Model {
	return []Model{AlexNet(), VGG16(), ResNet18(), MobileNet()}
}

// ByName looks a benchmark model up case-sensitively, returning false
// if unknown.
func ByName(name string) (Model, bool) {
	for _, m := range Benchmarks() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
