package nn_test

import (
	"testing"

	"albireo/internal/nn"
	"albireo/internal/tensor"
)

// TestQuantizedMLPTracksFloat: the int8 integer path must stay within
// a small relative RMS of the float reference, and the error must not
// collapse to zero (it is a real quantization path, not a float alias).
func TestQuantizedMLPTracksFloat(t *testing.T) {
	t.Parallel()
	m := nn.NewMLP("head", []int{24, 32, 10}, 7)
	x := tensor.RandomMatrix(6, 24, 9)
	want := m.Forward(nn.ExactGEMM{}, x)

	got := nn.QuantizeMLP(m, 8).Forward(x)
	r := relRMS(got.Data, want.Data)
	if r > 0.05 {
		t.Fatalf("int8 path diverges from float: relative RMS %v > 0.05", r)
	}
	if r == 0 {
		t.Fatal("int8 path is bit-identical to float: quantization is not happening")
	}
}

// TestQuantizedMLPBitwidthMonotonic: more bits must not make the
// integer path meaningfully worse, and very low bitwidths must be
// visibly worse than int8 - the shape the EXPERIMENTS.md sweep plots.
func TestQuantizedMLPBitwidthMonotonic(t *testing.T) {
	t.Parallel()
	m := nn.NewMLP("head", []int{24, 32, 10}, 7)
	x := tensor.RandomMatrix(6, 24, 9)
	want := m.Forward(nn.ExactGEMM{}, x)

	err := func(bits int) float64 {
		return relRMS(nn.QuantizeMLP(m, bits).Forward(x).Data, want.Data)
	}
	e2, e4, e8 := err(2), err(4), err(8)
	if !(e2 > e4 && e4 > e8) {
		t.Fatalf("quantization error not decreasing with bits: e2=%v e4=%v e8=%v", e2, e4, e8)
	}
	if e2 < 5*e8 {
		t.Fatalf("2-bit path suspiciously close to 8-bit: e2=%v e8=%v", e2, e8)
	}
}

// TestQuantizedMLPDeterministic: the integer path is exact arithmetic,
// so repeated runs must agree bitwise.
func TestQuantizedMLPDeterministic(t *testing.T) {
	t.Parallel()
	m := nn.NewMLP("head", []int{16, 12, 4}, 3)
	q := nn.QuantizeMLP(m, 8)
	x := tensor.RandomMatrix(3, 16, 5)
	a, b := q.Forward(x), q.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("integer path nondeterministic at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}
