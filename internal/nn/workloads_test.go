package nn

import "testing"

func TestWorkloadModelsValidate(t *testing.T) {
	t.Parallel()
	models := WorkloadModels()
	if len(models) != 3 {
		t.Fatalf("workload zoo has %d models, want 3", len(models))
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.TotalMACs() <= 0 {
			t.Errorf("%s: no MACs", m.Name)
		}
		for _, l := range m.Layers {
			switch l.Kind {
			case GEMM, LSTMCell, AttentionBlock:
			default:
				t.Errorf("%s layer %s: kind %s is not GEMM-family", m.Name, l.Name, l.Kind)
			}
		}
	}
}

func TestMLPHeadMatchesBlocks(t *testing.T) {
	t.Parallel()
	// The model's layer chain must be the descriptor chain of the
	// executable MLP it names: dims 512 -> 256 -> 128 -> 10 at batch 32.
	m := MLPHead()
	dims := []int{512, 256, 128, 10}
	if len(m.Layers) != len(dims)-1 {
		t.Fatalf("MLP head has %d layers, want %d", len(m.Layers), len(dims)-1)
	}
	for i, l := range m.Layers {
		if l.InZ != dims[i] || l.OutZ != dims[i+1] || l.InX != 32 {
			t.Errorf("layer %d = in %d out %d rows %d, want in %d out %d rows 32",
				i, l.InZ, l.OutZ, l.InX, dims[i], dims[i+1])
		}
	}
}

func TestTransformerBlockMACs(t *testing.T) {
	t.Parallel()
	// Four dim x dim projections, a 2*T*T*d attention, and the two
	// feed-forward products, all over 64 tokens of 256 features.
	const seq, dim, ffn = 64, 256, 1024
	want := int64(4*seq*dim*dim) + int64(2*seq*seq*dim) + int64(2*seq*dim*ffn)
	if got := TransformerBlock().TotalMACs(); got != want {
		t.Errorf("TotalMACs = %d, want %d", got, want)
	}
}
