package nn

import (
	"fmt"

	"albireo/internal/quant"
	"albireo/internal/tensor"
)

// QuantizedMLP is the end-to-end integer inference path of an MLP
// head: weights are stored as signed symmetric codes, activations are
// coded per-tensor through an affine scale/zero-point grid at every
// layer boundary, accumulation is exact int64, and the digital
// aggregation unit requantizes (one multiply by the scale product)
// before bias and ReLU. The whole forward pass is deterministic
// integer arithmetic plus digital float ends - the SCONNA-style
// serving mode the accuracy-vs-bitwidth sweep in EXPERIMENTS.md
// measures against the float path.
type QuantizedMLP struct {
	Name string
	// Bits is the code width for both weights and activations.
	Bits int
	// WCodes[i] holds layer i's weight codes row-major (in x out);
	// WQ[i] is the symmetric quantizer that produced them.
	WCodes [][]int64
	WQ     []quant.Quantizer
	// Shapes[i] is layer i's (in, out) feature pair.
	Shapes [][2]int
	// Biases stay in real space: they are added after requantization.
	Biases [][]float64
}

// QuantizeMLP converts a float MLP to its Bits-wide integer form.
func QuantizeMLP(m *MLP, bits int) *QuantizedMLP {
	q := &QuantizedMLP{Name: fmt.Sprintf("%s/int%d", m.Name, bits), Bits: bits}
	for i, w := range m.Weights {
		wq := quant.NewWeight(bits, w.MaxAbs())
		codes := make([]int64, len(w.Data))
		for j, v := range w.Data {
			codes[j] = int64(wq.Code(v))
		}
		q.WCodes = append(q.WCodes, codes)
		q.WQ = append(q.WQ, wq)
		q.Shapes = append(q.Shapes, [2]int{w.R, w.C})
		q.Biases = append(q.Biases, append([]float64(nil), m.Biases[i]...))
	}
	return q
}

// Forward runs a batch of rows through the integer path. Activation
// grids are calibrated per tensor (dynamic min/max), so the only
// float operations are the per-layer requantize multiply, bias add,
// and ReLU - all digital-aggregation-unit work.
func (q *QuantizedMLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	h := x
	last := len(q.WCodes) - 1
	for i, codes := range q.WCodes {
		in, out := q.Shapes[i][0], q.Shapes[i][1]
		if h.C != in {
			panic(fmt.Sprintf("nn: quantized layer %d wants %d features, got %d", i, in, h.C)) //lint:ignore exit-hygiene layer shape invariant; caller bug
		}
		aq := quant.CalibrateAffine(h.Data, q.Bits)
		wLSB := q.WQ[i].LSB()
		next := tensor.NewMatrix(h.R, out)
		xc := make([]int64, in)
		for r := 0; r < h.R; r++ {
			row := h.Data[r*in : (r+1)*in]
			for k, v := range row {
				xc[k] = aq.Code(v) - aq.Zero
			}
			for j := 0; j < out; j++ {
				var acc int64
				for k, c := range xc {
					acc += c * codes[k*out+j]
				}
				v := quant.Requantize(acc, aq.Scale, wLSB) + q.Biases[i][j]
				if i < last && v < 0 {
					v = 0
				}
				next.Data[r*out+j] = v
			}
		}
		h = next
	}
	return h
}
