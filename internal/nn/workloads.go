package nn

// The GEMM workload zoo as mapper-level models: the same MLP, LSTM,
// and attention blocks that blocks.go executes functionally, described
// through their own Layer descriptors so Config.MapModel prices
// non-CNN latency and energy exactly like the paper benchmarks.

// MLPHead returns the MLP classifier head as a model: a 512-feature
// embedding through two hidden layers to 10 logits, batch 32.
func MLPHead() Model {
	return Model{
		Name:   "MLP-Head",
		Layers: NewMLP("mlp-head", []int{512, 256, 128, 10}, 41).Layers(32),
	}
}

// LSTMSeq returns one recurrent cell unrolled over a 64-step sequence
// of 128-feature inputs with a 256-unit hidden state.
func LSTMSeq() Model {
	return Model{
		Name:   "LSTM-Seq64",
		Layers: []Layer{NewLSTM("lstm", 128, 256, 42).Layer(64)},
	}
}

// TransformerBlock returns one encoder block over a 64-token sequence
// of 256-dim states: Q/K/V projections (K and V branch from the same
// input), single-head attention, the output projection, and a
// 1024-wide feed-forward.
func TransformerBlock() Model {
	const (
		seq = 64
		dim = 256
		ffn = 1024
	)
	proj := func(name string, in, out int, branch bool) Layer {
		return Layer{
			Name: name, Kind: GEMM,
			InZ: in, InY: 1, InX: seq,
			OutZ: out, KY: 1, KX: 1,
			Branch: branch,
		}
	}
	return Model{
		Name: "Transformer-Block",
		Layers: []Layer{
			proj("q-proj", dim, dim, false),
			proj("k-proj", dim, dim, true),
			proj("v-proj", dim, dim, true),
			AttentionLayer("attn", seq, dim),
			proj("out-proj", dim, dim, false),
			proj("ffn1", dim, ffn, false),
			proj("ffn2", ffn, dim, false),
		},
	}
}

// WorkloadModels returns the non-CNN workload zoo in report order.
func WorkloadModels() []Model {
	return []Model{MLPHead(), LSTMSeq(), TransformerBlock()}
}
