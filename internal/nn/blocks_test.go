package nn_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/tensor"
)

// The workload golden matrix pins the analog GEMM workloads' exact
// output bits under noise, faults, and quarantine, following the
// internal/core golden pattern. Regenerate with:
//
//	ALBIREO_GOLDEN_UPDATE=1 go test ./internal/nn -run TestWorkloadGolden -v

func workloadHash(data []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range data {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * uint(i)))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func relRMS(got, want []float64) float64 {
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// chipUnder builds a default chip with the named impairment state.
func chipUnder(state string) *core.Chip {
	c := core.NewChip(core.DefaultConfig())
	switch state {
	case "healthy":
	case "faulty":
		if err := c.InjectFault(0, 0, core.Fault{Kind: core.StuckMZM, Tap: 2, Value: 0.7}); err != nil {
			panic(err) //lint:ignore exit-hygiene test fixture setup; inputs are constants
		}
		if err := c.InjectFault(2, 1, core.Fault{Kind: core.DeadRing, Tap: 3, Column: 1}); err != nil {
			panic(err) //lint:ignore exit-hygiene test fixture setup; inputs are constants
		}
	case "quarantined":
		if err := c.Quarantine(1, 0); err != nil {
			panic(err) //lint:ignore exit-hygiene test fixture setup; inputs are constants
		}
		if err := c.Quarantine(4, 2); err != nil {
			panic(err) //lint:ignore exit-hygiene test fixture setup; inputs are constants
		}
	}
	return c
}

func mlpOut(state string) []float64 {
	m := nn.NewMLP("head", []int{24, 32, 10}, 7)
	x := tensor.RandomMatrix(4, 24, 8)
	return m.Forward(chipUnder(state), x).Data
}

func lstmOut(state string) []float64 {
	l := nn.NewLSTM("cell", 12, 16, 17)
	xs := make([]*tensor.Matrix, 5)
	for i := range xs {
		xs[i] = tensor.RandomMatrix(2, 12, int64(100+i))
	}
	h, c := l.Run(chipUnder(state), xs)
	return append(append([]float64(nil), h.Data...), c.Data...)
}

func attnOut(state string) []float64 {
	q := tensor.RandomMatrix(6, 16, 21)
	k := tensor.RandomMatrix(6, 16, 22)
	v := tensor.RandomMatrix(6, 16, 23)
	return nn.Attention(chipUnder(state), q, k, v).Data
}

// TestWorkloadGolden pins the exact analog bits of each workload on
// healthy, faulted, and quarantined chips.
func TestWorkloadGolden(t *testing.T) {
	update := os.Getenv("ALBIREO_GOLDEN_UPDATE") != ""
	cases := []struct {
		name string
		want uint64
		run  func() []float64
	}{
		{"mlp/healthy", 0x127b38bd6818972e, func() []float64 { return mlpOut("healthy") }},
		{"mlp/faulty", 0x3794a2dada7147e2, func() []float64 { return mlpOut("faulty") }},
		{"mlp/quarantined", 0x579f1d91496cc97a, func() []float64 { return mlpOut("quarantined") }},
		{"lstm/healthy", 0xfb4d29ac31a6e8af, func() []float64 { return lstmOut("healthy") }},
		{"lstm/faulty", 0x4145e2a5b8d0a427, func() []float64 { return lstmOut("faulty") }},
		{"lstm/quarantined", 0x2edb9a46ad16c985, func() []float64 { return lstmOut("quarantined") }},
		{"attn/healthy", 0x1a0e2212ea702271, func() []float64 { return attnOut("healthy") }},
		{"attn/faulty", 0xd8fb04e68fab2a50, func() []float64 { return attnOut("faulty") }},
		{"attn/quarantined", 0x97cfdcfcf4aadf05, func() []float64 { return attnOut("quarantined") }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if !update {
				t.Parallel()
			}
			got := workloadHash(tc.run())
			if update {
				fmt.Printf("golden %-20s 0x%016x\n", tc.name, got)
				return
			}
			if got != tc.want {
				t.Fatalf("workload bits diverged: got 0x%016x, want 0x%016x", got, tc.want)
			}
		})
	}
}

// TestWorkloadAccuracyParity checks every workload's analog output
// against its exact reference within the signed-GEMM noise budget, on
// healthy, faulted, and quarantined chips. Faults are excluded for
// the recurrent LSTM (a stuck modulator compounds over timesteps by
// design - that is what BIST and quarantine are for); quarantine must
// stay parity-clean everywhere, since remap guarantees healthy-unit
// outputs.
func TestWorkloadAccuracyParity(t *testing.T) {
	t.Parallel()
	exact := nn.ExactGEMM{}
	type wl struct {
		name   string
		states []string
		budget float64
		run    func(be nn.GEMMExecutor) []float64
	}
	m := nn.NewMLP("head", []int{24, 32, 10}, 7)
	x := tensor.RandomMatrix(4, 24, 8)
	l := nn.NewLSTM("cell", 12, 16, 17)
	xs := make([]*tensor.Matrix, 5)
	for i := range xs {
		xs[i] = tensor.RandomMatrix(2, 12, int64(100+i))
	}
	q := tensor.RandomMatrix(6, 16, 21)
	k := tensor.RandomMatrix(6, 16, 22)
	v := tensor.RandomMatrix(6, 16, 23)

	wls := []wl{
		{"mlp", []string{"healthy", "quarantined"}, 0.25, func(be nn.GEMMExecutor) []float64 {
			return m.Forward(be, x).Data
		}},
		{"lstm", []string{"healthy", "quarantined"}, 0.25, func(be nn.GEMMExecutor) []float64 {
			h, c := l.Run(be, xs)
			return append(append([]float64(nil), h.Data...), c.Data...)
		}},
		{"attn", []string{"healthy", "quarantined"}, 0.25, func(be nn.GEMMExecutor) []float64 {
			return nn.Attention(be, q, k, v).Data
		}},
	}
	for _, w := range wls {
		w := w
		for _, state := range w.states {
			state := state
			t.Run(w.name+"/"+state, func(t *testing.T) {
				t.Parallel()
				want := w.run(exact)
				got := w.run(chipUnder(state))
				if r := relRMS(got, want); r > w.budget {
					t.Fatalf("analog %s diverges from exact reference: relative RMS %v > %v", w.name, r, w.budget)
				}
			})
		}
	}
}

// TestLSTMStepHandReference validates the gate plumbing against a
// hand-computed single-unit cell.
func TestLSTMStepHandReference(t *testing.T) {
	t.Parallel()
	l := &nn.LSTM{
		Name: "unit", InSize: 1, Hidden: 1,
		Wx: tensor.NewMatrix(1, 4),
		Wh: tensor.NewMatrix(1, 4),
		B:  []float64{0.1, 0.2, 0.3, 0.4},
	}
	copy(l.Wx.Data, []float64{0.5, -0.5, 1.0, 0.25})
	copy(l.Wh.Data, []float64{0.1, 0.2, -0.3, 0.4})
	x := tensor.NewMatrix(1, 1)
	x.Data[0] = 0.8
	h0 := tensor.NewMatrix(1, 1)
	h0.Data[0] = 0.3
	c0 := tensor.NewMatrix(1, 1)
	c0.Data[0] = -0.2

	sig := func(z float64) float64 { return 1 / (1 + math.Exp(-z)) }
	i := sig(0.8*0.5 + 0.3*0.1 + 0.1)
	f := sig(0.8*-0.5 + 0.3*0.2 + 0.2)
	g := math.Tanh(0.8*1.0 + 0.3*-0.3 + 0.3)
	o := sig(0.8*0.25 + 0.3*0.4 + 0.4)
	wantC := f*-0.2 + i*g
	wantH := o * math.Tanh(wantC)

	h1, c1 := l.Step(nn.ExactGEMM{}, x, h0, c0)
	if math.Abs(c1.Data[0]-wantC) > 1e-12 || math.Abs(h1.Data[0]-wantH) > 1e-12 {
		t.Fatalf("Step = (h %v, c %v), want (h %v, c %v)", h1.Data[0], c1.Data[0], wantH, wantC)
	}
}

// TestAttentionRowsAreConvexCombinations: softmax weights are a
// probability distribution, so each exact-reference output row must
// lie inside the column-wise range of V.
func TestAttentionRowsAreConvexCombinations(t *testing.T) {
	t.Parallel()
	q := tensor.RandomMatrix(5, 8, 31)
	k := tensor.RandomMatrix(5, 8, 32)
	v := tensor.RandomMatrix(5, 8, 33)
	out := nn.Attention(nn.ExactGEMM{}, q, k, v)
	for j := 0; j < v.C; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < v.R; i++ {
			lo = math.Min(lo, v.At(i, j))
			hi = math.Max(hi, v.At(i, j))
		}
		for i := 0; i < out.R; i++ {
			if got := out.At(i, j); got < lo-1e-12 || got > hi+1e-12 {
				t.Fatalf("output (%d,%d) = %v outside V column range [%v, %v]", i, j, got, lo, hi)
			}
		}
	}
}

// TestMLPLayersDescribeMapping: the mapper-level descriptors agree
// with the weight shapes.
func TestMLPLayersDescribeMapping(t *testing.T) {
	t.Parallel()
	m := nn.NewMLP("head", []int{24, 32, 10}, 7)
	ls := m.Layers(4)
	if len(ls) != 2 {
		t.Fatalf("got %d layers, want 2", len(ls))
	}
	if ls[0].InZ != 24 || ls[0].OutZ != 32 || ls[0].InX != 4 || ls[0].Kind != nn.GEMM {
		t.Fatalf("layer 0 = %+v", ls[0])
	}
	if got, want := ls[0].MACs(), int64(4*24*32); got != want {
		t.Fatalf("layer 0 MACs = %d, want %d", got, want)
	}
}
