// Package nn describes CNN workloads at the layer granularity the
// Albireo performance model consumes: layer kind, input volume shape,
// kernel geometry, stride/padding/grouping. It ships the four
// benchmark networks of the paper's evaluation - AlexNet, VGG16,
// ResNet18, and MobileNet - with 224x224x3 inputs (Section IV-A), and
// utilities for MAC and parameter counting.
package nn

import (
	"fmt"

	"albireo/internal/tensor"
)

// Kind classifies a layer for the mapper.
type Kind int

const (
	// Conv is a standard (optionally grouped) convolution.
	Conv Kind = iota
	// Depthwise is a depthwise convolution (one filter per channel).
	Depthwise
	// Pointwise is a 1x1 convolution, mapped specially on Albireo
	// (Section III-C depthwise-separable discussion).
	Pointwise
	// FC is a fully-connected layer.
	FC
	// MaxPoolKind and AvgPoolKind are pooling layers; they carry no
	// MACs and are executed by the digital aggregation path.
	MaxPoolKind
	AvgPoolKind
	// GEMM is a general matrix multiply: InX rows by InZ reduction
	// elements against an InZ x OutZ weight matrix (the photonic block
	// mapping with matrix rows as pixels; see core/gemm.go).
	GEMM
	// LSTMCell is one recurrent cell unrolled over InX timesteps:
	// InZ input features, OutZ hidden units, four gates per step.
	LSTMCell
	// AttentionBlock is a single-head attention over an InX-long
	// sequence of InZ-dim states: QK^T and AV run on the fabric, the
	// softmax between them is digital.
	AttentionBlock

	// NumKinds is the exclusive upper bound of the Kind enum. It must
	// stay last: the exhaustiveness tests in nn and core iterate
	// [0, NumKinds) and fail CI when a new kind misses a String, MACs,
	// or MapLayer case.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Depthwise:
		return "dwconv"
	case Pointwise:
		return "pwconv"
	case FC:
		return "fc"
	case MaxPoolKind:
		return "maxpool"
	case AvgPoolKind:
		return "avgpool"
	case GEMM:
		return "gemm"
	case LSTMCell:
		return "lstm"
	case AttentionBlock:
		return "attn"
	default:
		return "unknown"
	}
}

// Layer is one network layer with enough geometry for both functional
// simulation and analytic performance modeling.
type Layer struct {
	Name string
	Kind Kind
	// Input volume shape (channels, height, width). For FC the input
	// is flattened: InZ = features, InY = InX = 1.
	InZ, InY, InX int
	// OutZ is the number of kernels / output channels (for pooling it
	// equals InZ).
	OutZ int
	// KY, KX are kernel spatial dims (pool window for pooling; 1 for
	// FC).
	KY, KX int
	// Stride and Pad are symmetric spatial parameters.
	Stride, Pad int
	// Groups is the grouped-convolution factor (1 = dense).
	Groups int
	// Branch marks a layer fed from an earlier activation (e.g. a
	// ResNet downsample shortcut). Branch layers still count MACs and
	// occupy the fabric, but sit outside the main shape chain.
	Branch bool
}

// OutY returns the output height via Eq. 1. GEMM-family layers carry
// their sequence/row extent in InX and have no height.
func (l Layer) OutY() int {
	switch l.Kind {
	case FC, GEMM, LSTMCell, AttentionBlock:
		return 1
	}
	return tensor.ConvOutputDim(l.InY, l.KY, l.Pad, l.strideOr1())
}

// OutX returns the output width via Eq. 1. GEMM-family layers keep
// their row count (GEMM) or sequence length (LSTM, attention).
func (l Layer) OutX() int {
	switch l.Kind {
	case FC:
		return 1
	case GEMM, LSTMCell, AttentionBlock:
		return l.InX
	}
	return tensor.ConvOutputDim(l.InX, l.KX, l.Pad, l.strideOr1())
}

func (l Layer) strideOr1() int {
	if l.Stride <= 0 {
		return 1
	}
	return l.Stride
}

func (l Layer) groupsOr1() int {
	if l.Groups <= 0 {
		return 1
	}
	return l.Groups
}

// MACs returns the multiply-accumulate count of the layer. Pooling
// layers count zero. This is the operation count the paper's GOPS
// figures are based on (Table IV normalizes by MACs; see DESIGN.md).
func (l Layer) MACs() int64 {
	outPix := int64(l.OutY()) * int64(l.OutX())
	switch l.Kind {
	case Conv:
		perOut := int64(l.KY) * int64(l.KX) * int64(l.InZ) / int64(l.groupsOr1())
		return outPix * int64(l.OutZ) * perOut
	case Depthwise:
		return outPix * int64(l.InZ) * int64(l.KY) * int64(l.KX)
	case Pointwise:
		return outPix * int64(l.OutZ) * int64(l.InZ)
	case FC:
		return int64(l.InZ) * int64(l.InY) * int64(l.InX) * int64(l.OutZ)
	case GEMM:
		// M rows x K reduction x N columns.
		return int64(l.InX) * int64(l.InZ) * int64(l.OutZ)
	case LSTMCell:
		// Four gates of OutZ units over [x;h] per timestep.
		return int64(l.InX) * 4 * int64(l.OutZ) * int64(l.InZ+l.OutZ)
	case AttentionBlock:
		// QK^T and AV: two T x T x d products.
		return 2 * int64(l.InX) * int64(l.InX) * int64(l.InZ)
	default:
		return 0
	}
}

// Params returns the weight count of the layer (no biases).
func (l Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutZ) * int64(l.InZ) / int64(l.groupsOr1()) * int64(l.KY) * int64(l.KX)
	case Depthwise:
		return int64(l.InZ) * int64(l.KY) * int64(l.KX)
	case Pointwise:
		return int64(l.OutZ) * int64(l.InZ)
	case FC:
		return int64(l.InZ) * int64(l.InY) * int64(l.InX) * int64(l.OutZ)
	case GEMM:
		return int64(l.InZ) * int64(l.OutZ)
	case LSTMCell:
		return 4 * int64(l.OutZ) * int64(l.InZ+l.OutZ)
	case AttentionBlock:
		// The bare block multiplies activations by activations; any
		// Q/K/V projections are separate GEMM layers.
		return 0
	default:
		return 0
	}
}

// HasMACs reports whether the layer performs dot products (and hence
// occupies the photonic fabric).
func (l Layer) HasMACs() bool { return l.MACs() > 0 }

// String implements fmt.Stringer.
func (l Layer) String() string {
	return fmt.Sprintf("%s %s in=%dx%dx%d out=%dx%dx%d k=%dx%d s=%d p=%d g=%d",
		l.Name, l.Kind, l.InZ, l.InY, l.InX, l.OutZ, l.OutY(), l.OutX(),
		l.KY, l.KX, l.strideOr1(), l.Pad, l.groupsOr1())
}

// Model is a named stack of layers.
type Model struct {
	Name   string
	Layers []Layer
}

// TotalMACs sums MACs over all layers.
func (m Model) TotalMACs() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.MACs()
	}
	return sum
}

// TotalParams sums parameters over all layers.
func (m Model) TotalParams() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.Params()
	}
	return sum
}

// ComputeLayers returns only layers with MACs (the ones the photonic
// fabric executes).
func (m Model) ComputeLayers() []Layer {
	out := make([]Layer, 0, len(m.Layers))
	for _, l := range m.Layers {
		if l.HasMACs() {
			out = append(out, l)
		}
	}
	return out
}

// Validate checks layer-to-layer shape consistency and returns a
// descriptive error for the first mismatch.
func (m Model) Validate() error {
	prevZ, prevY, prevX := -1, -1, -1
	for i, l := range m.Layers {
		if l.Branch {
			continue
		}
		if prevZ >= 0 {
			inZ := l.InZ
			if l.Kind == FC && (prevY != 1 || prevX != 1) {
				// FC flattens the previous volume.
				inZ = l.InZ * l.InY * l.InX
				if inZ != prevZ*prevY*prevX {
					return fmt.Errorf("nn: %s layer %d (%s) flattened input %d != previous volume %d",
						m.Name, i, l.Name, inZ, prevZ*prevY*prevX)
				}
			} else if l.InZ != prevZ || l.InY != prevY || l.InX != prevX {
				return fmt.Errorf("nn: %s layer %d (%s) input %dx%dx%d != previous output %dx%dx%d",
					m.Name, i, l.Name, l.InZ, l.InY, l.InX, prevZ, prevY, prevX)
			}
		}
		switch l.Kind {
		case MaxPoolKind, AvgPoolKind:
			prevZ, prevY, prevX = l.InZ, l.OutY(), l.OutX()
		case FC:
			prevZ, prevY, prevX = l.OutZ, 1, 1
		default:
			prevZ, prevY, prevX = l.OutZ, l.OutY(), l.OutX()
		}
	}
	return nil
}
