package noise

import (
	"math"
	"testing"
)

func TestErrorProbabilityLimits(t *testing.T) {
	t.Parallel()
	// Wide separation: vanishing error.
	if p := ErrorProbability(1, 0.01); p > 1e-15 {
		t.Errorf("100-sigma separation should be error free, got %g", p)
	}
	// Zero separation: certain error.
	if ErrorProbability(0, 1) != 1 {
		t.Error("zero separation should always err")
	}
	// Zero noise: never errs.
	if ErrorProbability(1, 0) != 0 {
		t.Error("noiseless reads never err")
	}
}

func TestErrorProbabilityKnownValues(t *testing.T) {
	t.Parallel()
	// Separation of 2 sigma: erfc(1/sqrt(2)) = 0.3173 (the classic
	// 1-sigma two-sided tail).
	got := ErrorProbability(2, 1)
	want := math.Erfc(1 / math.Sqrt2)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("2-sigma separation error = %g, want %g", got, want)
	}
	// 6-sigma separation: ~2.7e-3... erfc(3/sqrt2) = 0.0027.
	got = ErrorProbability(6, 1)
	if math.Abs(got-0.0026997960632601866) > 1e-12 {
		t.Errorf("6-sigma separation error = %g", got)
	}
}

func TestErrorProbabilityMonotone(t *testing.T) {
	t.Parallel()
	prev := 1.1
	for sep := 0.5; sep <= 8; sep += 0.5 {
		p := ErrorProbability(sep, 1)
		if p >= prev {
			t.Fatalf("error probability must fall with separation at %g", sep)
		}
		prev = p
	}
}

func TestLevelErrorProbability(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	iPer := 0.5e-3
	// More bits, thinner levels, more errors.
	prev := -1.0
	for b := 4; b <= 12; b++ {
		e := p.LevelErrorProbability(iPer, 20, b)
		if e < prev {
			t.Fatalf("error must grow with bit depth at %d bits", b)
		}
		prev = e
	}
	// Degenerate inputs are certain errors.
	if p.LevelErrorProbability(0, 20, 8) != 1 || p.LevelErrorProbability(1e-3, 0, 8) != 1 {
		t.Error("degenerate operating points cannot support any bits")
	}
}

func TestMaxErrorFreeBitsConsistent(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	iPer := 1.1 * 2e-3 * math.Pow(10, -0.5)
	// At a 1e-9 error budget the supported width is close to (a bit
	// below) the sigma-separation estimate with its default k=1.
	bits := p.MaxErrorFreeBits(iPer, 20, 1e-9)
	est := p.SupportedIntBits(iPer, 20)
	if bits > est {
		t.Errorf("1e-9-budget bits (%d) should not exceed the k=1 estimate (%d)", bits, est)
	}
	if bits < est-4 {
		t.Errorf("error-budget bits (%d) implausibly far below estimate (%d)", bits, est)
	}
	// Looser budgets admit more bits.
	if loose := p.MaxErrorFreeBits(iPer, 20, 1e-2); loose < bits {
		t.Error("a looser error budget should admit at least as many bits")
	}
	if p.MaxErrorFreeBits(iPer, 20, 0) != 0 {
		t.Error("zero budget supports zero bits")
	}
}

func TestMACErrorsPerInference(t *testing.T) {
	t.Parallel()
	if got := MACErrorsPerInference(1e-6, 1e6); math.Abs(got-1) > 1e-9 {
		t.Errorf("expected errors = %g, want 1", got)
	}
	if MACErrorsPerInference(-1, 100) != 0 {
		t.Error("negative probability should clamp")
	}
}
