package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShotSigmaMatchesEq5(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// 1 mA at 5 GHz: sqrt(2 * 1.602e-19 * 1e-3 * 5e9) = 1.266 uA.
	got := p.ShotSigma(1e-3)
	want := math.Sqrt(2 * 1.602176634e-19 * 1e-3 * 5e9)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("shot sigma = %g, want %g", got, want)
	}
	if p.ShotSigma(-1) != 0 {
		t.Error("negative current should clamp to zero shot noise")
	}
}

func TestThermalSigmaMatchesEq6(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	want := math.Sqrt(4 * 1.380649e-23 * 300 * 5e9 / 1e4)
	if math.Abs(p.ThermalSigma()-want) > 1e-15 {
		t.Errorf("thermal sigma = %g, want %g", p.ThermalSigma(), want)
	}
	// Thermal noise is independent of signal level but grows with
	// temperature and shrinks with feedback resistance.
	hot := p
	hot.Temperature = 400
	if hot.ThermalSigma() <= p.ThermalSigma() {
		t.Error("hotter TIA should be noisier")
	}
	stiff := p
	stiff.FeedbackOhms = 100e3
	if stiff.ThermalSigma() >= p.ThermalSigma() {
		t.Error("larger Rf should reduce current noise")
	}
}

func TestRINSigmaScaling(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// RIN scales linearly with per-channel current and with sqrt(n)
	// for independent lasers.
	base := p.RINSigma(1e-3, 1)
	if math.Abs(p.RINSigma(2e-3, 1)-2*base) > 1e-15 {
		t.Error("RIN should scale linearly with current")
	}
	if math.Abs(p.RINSigma(1e-3, 4)-2*base) > 1e-15 {
		t.Error("RIN should scale with sqrt of laser count")
	}
	if p.RINSigma(1e-3, 0) != 0 || p.RINSigma(-1, 3) != 0 {
		t.Error("degenerate inputs should give zero RIN")
	}
	// -140 dBc/Hz over 5 GHz: sigma/I = sqrt(1e-14 * 5e9) = 7.07e-3.
	rel := base / 1e-3
	if math.Abs(rel-math.Sqrt(5e-5)) > 1e-12 {
		t.Errorf("relative RIN = %g, want %g", rel, math.Sqrt(5e-5))
	}
}

func TestTotalSigmaComposition(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	iPer, n := 0.5e-3, 10
	s := p.ShotSigma(iPer * float64(n))
	th := p.ThermalSigma()
	r := p.RINSigma(iPer, n)
	want := math.Sqrt(s*s + th*th + r*r)
	if math.Abs(p.TotalSigma(iPer, n)-want) > 1e-18 {
		t.Error("total sigma should be the RSS of the three sources")
	}
}

func TestSeparableLevelsMonotoneInPower(t *testing.T) {
	t.Parallel()
	// More per-channel power means more separable levels, up to the
	// RIN plateau (Figure 3's diminishing returns).
	p := DefaultParams()
	prev := 0.0
	for _, i := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		lv := p.SeparableLevels(i, 20)
		if lv <= prev {
			t.Errorf("levels should grow with power below the RIN plateau: %g", i)
		}
		prev = lv
	}
}

func TestSeparableLevelsRINPlateau(t *testing.T) {
	t.Parallel()
	// In the RIN-dominated limit the level count saturates at
	// sqrt(n)/(k*sqrt(RIN*df)) regardless of power - the paper's
	// "diminishing returns for increasing laser power".
	p := DefaultParams()
	big := p.SeparableLevels(1, 20)     // absurdly high power
	bigger := p.SeparableLevels(10, 20) // 10x more
	if math.Abs(big-bigger)/big > 0.01 {
		t.Errorf("RIN plateau not flat: %g vs %g", big, bigger)
	}
	want := math.Sqrt(20) / (p.SeparationSigma * math.Sqrt(1e-14*5e9))
	if math.Abs(big-want)/want > 0.02 {
		t.Errorf("plateau level = %g, want %g", big, want)
	}
}

func TestFig3Anchor(t *testing.T) {
	t.Parallel()
	// Paper: "10 bits of precision is achievable with a 2 mW optical
	// laser source with as few as 20 wavelengths." With a ~5 dB
	// dot-product path loss, 2 mW delivers ~0.63 mW per channel.
	p := DefaultParams()
	iPer := 1.1 * 2e-3 * math.Pow(10, -0.5) // R * P * 5 dB loss
	bits := p.PrecisionBits(iPer, 20)
	if bits < 9 || bits > 11 {
		t.Errorf("Fig 3 anchor: got %.2f bits, want ~10", bits)
	}
}

func TestDominantSourceTransitions(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// At microwatt-scale currents thermal noise dominates.
	if got := p.DominantSource(1e-7, 1); got != "thermal" {
		t.Errorf("low power should be thermal limited, got %s", got)
	}
	// At very high powers RIN dominates (linear in I beats sqrt(I)).
	if got := p.DominantSource(10e-3, 20); got != "rin" {
		t.Errorf("high power should be RIN limited, got %s", got)
	}
}

func TestPrecisionBitsExamples(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// The paper's worked example: 450 separable levels is 8.81 bits,
	// which "fully supports 8 bits".
	// Find an operating point and check floor semantics instead of the
	// exact 450 - SupportedIntBits must floor PrecisionBits.
	f := func(scale float64) bool {
		i := math.Abs(math.Mod(scale, 1)) * 1e-3
		if i == 0 {
			return true
		}
		b := p.PrecisionBits(i, 20)
		return p.SupportedIntBits(i, 20) == int(math.Floor(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeparableLevelsDegenerate(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	if p.SeparableLevels(0, 20) != 1 {
		t.Error("zero power should give a single level")
	}
	if p.SeparableLevels(1e-3, 0) != 1 {
		t.Error("zero wavelengths should give a single level")
	}
	if p.SupportedIntBits(0, 0) != 0 {
		t.Error("degenerate input should support 0 bits")
	}
}

func TestSampleStatistics(t *testing.T) {
	t.Parallel()
	// The Monte Carlo sampler must reproduce TotalSigma empirically.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(42))
	iPer, n := 0.2e-3, 21
	want := p.TotalSigma(iPer, n)
	const trials = 200000
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		x := p.Sample(rng, iPer, n)
		sum += x
		sum2 += x * x
	}
	mean := sum / trials
	std := math.Sqrt(sum2/trials - mean*mean)
	if math.Abs(mean) > 5*want/math.Sqrt(trials) {
		t.Errorf("sample mean %g too far from zero", mean)
	}
	if math.Abs(std-want)/want > 0.02 {
		t.Errorf("sample std %g, want %g", std, want)
	}
}
