package noise

import (
	"math"
	"testing"
)

func TestSeparableLevelsEdgeCases(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	// A noiseless configuration supports unbounded levels.
	silent := Params{
		Bandwidth:       0, // kills shot and thermal
		Temperature:     300,
		FeedbackOhms:    1e4,
		RINdBcHz:        -300, // effectively zero but Bandwidth=0 anyway
		Responsivity:    1.1,
		SeparationSigma: 1,
	}
	if !math.IsInf(silent.SeparableLevels(1e-3, 4), 1) {
		t.Error("zero noise should support unbounded levels")
	}
	if silent.SupportedIntBits(1e-3, 4) != 64 {
		t.Error("unbounded levels cap SupportedIntBits at 64")
	}
	// A sub-single-level operating point floors at one level, zero
	// bits.
	starved := p
	starved.SeparationSigma = 1e12
	if starved.SeparableLevels(1e-9, 2) != 1 {
		t.Error("hopeless separation floors at one level")
	}
	if starved.SupportedIntBits(1e-9, 2) != 0 {
		t.Error("one level supports zero bits")
	}
}

func TestDominantSourceShotWindow(t *testing.T) {
	t.Parallel()
	// Between the thermal floor and the RIN ceiling there is a
	// shot-dominated window (single channel keeps RIN low).
	p := DefaultParams()
	found := false
	for _, i := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		if p.DominantSource(i, 1) == "shot" {
			found = true
		}
	}
	if !found {
		t.Error("expected a shot-dominated operating window")
	}
}
