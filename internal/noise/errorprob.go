package noise

import (
	"math"
)

// The paper (Section II-C.1) notes that output value distributions
// "may overlap a decision threshold with a small probability", making
// computation approximate beyond the supported precision. This file
// models that explicitly: the probability that Gaussian noise pushes
// an output across the midpoint between adjacent levels.

// ErrorProbability returns the per-sample probability of reading the
// wrong level when adjacent levels are separated by sep and the noise
// is Gaussian with standard deviation sigma. Interior levels can err
// in both directions: P = erfc(sep/(2*sqrt(2)*sigma)).
func ErrorProbability(sep, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	if sep <= 0 {
		return 1
	}
	return math.Erfc(sep / (2 * math.Sqrt2 * sigma))
}

// LevelErrorProbability returns the misread probability for a b-bit
// output over an accumulation of n wavelengths with per-channel
// full-scale photocurrent iPer: the full scale n*iPer is divided into
// 2^bits levels and compared against the operating-point noise.
func (p Params) LevelErrorProbability(iPer float64, n, bits int) float64 {
	if iPer <= 0 || n <= 0 || bits <= 0 {
		return 1
	}
	fullScale := iPer * float64(n)
	sep := fullScale / float64(uint64(1)<<uint(bits))
	return ErrorProbability(sep, p.TotalSigma(iPer, n))
}

// MaxErrorFreeBits returns the largest bit width whose per-sample
// error probability stays below pMax at the operating point - the
// "fully supports b bits without error" criterion with an explicit
// error budget instead of a sigma-separation rule of thumb.
func (p Params) MaxErrorFreeBits(iPer float64, n int, pMax float64) int {
	if pMax <= 0 {
		return 0
	}
	bits := 0
	for b := 1; b <= 16; b++ {
		if p.LevelErrorProbability(iPer, n, b) > pMax {
			break
		}
		bits = b
	}
	return bits
}

// MACErrorsPerInference estimates the expected number of erroneous
// MAC-level reads in an inference with total dot-product outputs
// given the per-sample error probability.
func MACErrorsPerInference(perSample float64, outputs int64) float64 {
	if perSample < 0 {
		perSample = 0
	}
	return perSample * float64(outputs)
}
