// Package noise implements the noise sources that limit the precision
// of Albireo's analog photonic dot products (paper Section II-C.1):
// laser relative intensity noise (RIN), photodiode shot noise (Eq. 5),
// and Johnson-Nyquist thermal noise in the TIA (Eq. 6). It composes
// them into a separable-level count - the paper's "bits of precision"
// metric, log2 of the number of distinguishable optical power
// amplitudes at the output.
package noise

import (
	"math"
	"math/rand"

	"albireo/internal/units"
)

// Params holds the system parameters of the paper's noise analysis.
type Params struct {
	// Bandwidth is the detection bandwidth df in hertz (paper: 5 GHz).
	Bandwidth float64
	// Temperature is T in kelvin (paper: 300 K).
	Temperature float64
	// FeedbackOhms is the TIA feedback resistance Rf in Eq. 6.
	FeedbackOhms float64
	// RINdBcHz is the laser relative intensity noise PSD (paper:
	// -140 dBc/Hz).
	RINdBcHz float64
	// Responsivity is the PD responsivity in A/W.
	Responsivity float64
	// SeparationSigma is the number of noise standard deviations two
	// adjacent output levels must be apart to count as separable. The
	// default 1.0 reproduces the paper's Figure 3 anchor (10 bits at
	// 2 mW with ~20 wavelengths); stricter designs would use 3-6.
	SeparationSigma float64
}

// DefaultParams returns the Section II-C parameters (df = 5 GHz,
// T = 300 K, RIN = -140 dBc/Hz) with the Table II responsivity and the
// internal/photonics TIA feedback resistance.
func DefaultParams() Params {
	return Params{
		Bandwidth:       5 * units.Giga,
		Temperature:     300,
		FeedbackOhms:    10 * units.Kilo,
		RINdBcHz:        -140,
		Responsivity:    1.1,
		SeparationSigma: 1.0,
	}
}

// ShotSigma returns the standard deviation of shot-noise current for a
// mean photodiode current (Eq. 5: variance 2*qe*Ipd*df).
func (p Params) ShotSigma(ipd float64) float64 {
	if ipd < 0 {
		ipd = 0
	}
	return math.Sqrt(2 * units.ElementaryCharge * ipd * p.Bandwidth)
}

// ThermalSigma returns the standard deviation of Johnson-Nyquist
// current noise (Eq. 6: variance 4*kB*T*df/Rf).
func (p Params) ThermalSigma() float64 {
	return math.Sqrt(4 * units.Boltzmann * p.Temperature * p.Bandwidth / p.FeedbackOhms)
}

// RINSigma returns the standard deviation of the RIN-induced current
// fluctuation for n statistically independent lasers each contributing
// photocurrent iPer. Independent laser fluctuations add in variance:
// sigma = iPer * sqrt(n * RIN_linear * df).
func (p Params) RINSigma(iPer float64, n int) float64 {
	if iPer < 0 || n <= 0 {
		return 0
	}
	rin := units.DBToLinear(p.RINdBcHz)
	return iPer * math.Sqrt(float64(n)*rin*p.Bandwidth)
}

// TotalSigma composes the three independent noise sources for an
// accumulation of n wavelengths each carrying per-channel photocurrent
// iPer (so the total DC current is n*iPer).
func (p Params) TotalSigma(iPer float64, n int) float64 {
	ipd := iPer * float64(n)
	s := p.ShotSigma(ipd)
	t := p.ThermalSigma()
	r := p.RINSigma(iPer, n)
	return math.Sqrt(s*s + t*t + r*r)
}

// SeparableLevels returns the number of distinguishable output current
// amplitudes for an n-wavelength accumulation with per-channel
// full-scale photocurrent iPer: the full-scale swing divided by the
// required level separation. The result is at least 1.
func (p Params) SeparableLevels(iPer float64, n int) float64 {
	if iPer <= 0 || n <= 0 {
		return 1
	}
	sigma := p.TotalSigma(iPer, n)
	if sigma <= 0 {
		return math.Inf(1)
	}
	lv := iPer * float64(n) / (p.SeparationSigma * sigma)
	if lv < 1 {
		return 1
	}
	return lv
}

// PrecisionBits returns log2 of the separable level count - the
// paper's "bits of precision" (e.g. 450 levels -> 8.81 bits, so the
// system fully supports 8 bits).
func (p Params) PrecisionBits(iPer float64, n int) float64 {
	return units.Log2(p.SeparableLevels(iPer, n))
}

// SupportedIntBits returns the largest integer bit width fully
// supported without error: floor of PrecisionBits.
func (p Params) SupportedIntBits(iPer float64, n int) int {
	b := p.PrecisionBits(iPer, n)
	if math.IsInf(b, 1) {
		return 64
	}
	if b < 0 {
		return 0
	}
	return int(math.Floor(b))
}

// DominantSource identifies which noise source has the largest
// standard deviation at the operating point, matching the paper's
// observation that RIN contributes the least at typical circuit powers
// and that precision grows with laser power until RIN dominates.
func (p Params) DominantSource(iPer float64, n int) string {
	s := p.ShotSigma(iPer * float64(n))
	t := p.ThermalSigma()
	r := p.RINSigma(iPer, n)
	switch {
	case r >= s && r >= t:
		return "rin"
	case s >= r && s >= t:
		return "shot"
	default:
		return "thermal"
	}
}

// Sample draws one correlated noise realization for an accumulation of
// n channels with per-channel current iPer, using rng. It is the Monte
// Carlo counterpart of TotalSigma used by the functional simulator.
func (p Params) Sample(rng *rand.Rand, iPer float64, n int) float64 {
	return rng.NormFloat64() * p.TotalSigma(iPer, n)
}
