package inference_test

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/inference/backendtest"
	"albireo/internal/obs"
)

// The conformance suite runs the same backend contract against every
// implementation in this package; the fleet-bound backend runs it too
// (internal/fleet/backend_test.go).

func TestExactConformance(t *testing.T) {
	t.Parallel()
	backendtest.Run(t, func(t *testing.T) inference.Backend {
		return inference.Exact{}
	})
}

func TestAnalogConformance(t *testing.T) {
	t.Parallel()
	backendtest.Run(t, func(t *testing.T) inference.Backend {
		return inference.NewAnalog(core.DefaultConfig())
	})
}

func TestObservedConformance(t *testing.T) {
	t.Parallel()
	backendtest.Run(t, func(t *testing.T) inference.Backend {
		return inference.Observe(inference.NewAnalog(core.DefaultConfig()), obs.NewRegistry(), obs.NewTrace())
	})
}

func TestGuardedConformance(t *testing.T) {
	t.Parallel()
	backendtest.Run(t, func(t *testing.T) inference.Backend {
		g := inference.Guard(inference.NewAnalog(core.DefaultConfig()), inference.Exact{}, 0.5)
		return g.Instrument(obs.NewRegistry(), obs.NewTrace())
	})
}
