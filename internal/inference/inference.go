// Package inference runs whole CNNs end-to-end on interchangeable
// backends: an exact digital reference and the Albireo analog chip.
// It is the integration layer that demonstrates the functional
// simulator computing real multi-layer networks - convolutions,
// depthwise-separable blocks, residual blocks, pooling, and
// classifiers - through the impaired optical pipeline, and quantifies
// the end-to-end cost of analog computation (top-1 agreement, logit
// correlation).
package inference

import (
	"fmt"
	"math"

	"albireo/internal/core"
	"albireo/internal/tensor"
)

// Backend executes the compute layers. Pooling and residual addition
// are digital on every backend (they ride the aggregation path).
type Backend interface {
	// Conv runs a (possibly grouped or depthwise) convolution.
	Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume
	// FullyConnected runs a classifier layer over the whole volume.
	FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64
	// GEMM runs a dense matrix product (the MLP/LSTM/attention
	// workload primitive).
	GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix
	// Name identifies the backend in reports.
	Name() string
}

// Exact is the digital reference backend.
type Exact struct{}

// Conv implements Backend.
func (Exact) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	out := tensor.Conv(a, w, cfg)
	if relu {
		tensor.ReLU(out)
	}
	return out
}

// FullyConnected implements Backend.
func (Exact) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	out := tensor.FullyConnected(a, w)
	if relu {
		tensor.ReLUVec(out)
	}
	return out
}

// GEMM implements Backend.
func (Exact) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	out := tensor.MatMul(a, b)
	if relu {
		tensor.ReLUMat(out)
	}
	return out
}

// Name implements Backend.
func (Exact) Name() string { return "exact" }

// Analog executes layers on the Albireo functional chip.
type Analog struct {
	Chip *core.Chip
}

// NewAnalog builds an analog backend for a configuration.
func NewAnalog(cfg core.Config) Analog {
	return Analog{Chip: core.NewChip(cfg)}
}

// Conv implements Backend: 1x1 dense kernels route through the
// pointwise mapping, everything else through the receptive-field
// mapping.
func (b Analog) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	stride := cfg.Stride
	if stride == 0 {
		stride = 1
	}
	if !cfg.Depthwise && cfg.Groups <= 1 && w.Y == 1 && w.X == 1 && stride == 1 && cfg.Pad == 0 {
		return b.Chip.Pointwise(a, w, relu)
	}
	return b.Chip.Conv(a, w, cfg, relu)
}

// FullyConnected implements Backend.
func (b Analog) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	return b.Chip.FullyConnected(a, w, relu)
}

// GEMM implements Backend via the chip's tiled GEMM engine.
func (b Analog) GEMM(x, w *tensor.Matrix, relu bool) *tensor.Matrix {
	return b.Chip.GEMM(x, w, relu)
}

// Name implements Backend.
func (b Analog) Name() string { return "albireo-" + b.Chip.Config().Estimate.String() }

// Op is one step of a network.
type Op interface {
	apply(b Backend, x *tensor.Volume) *tensor.Volume
}

// ConvOp is a convolution step (dense, grouped, depthwise, or 1x1).
type ConvOp struct {
	Kernels *tensor.Kernels
	Cfg     tensor.ConvConfig
	ReLU    bool
}

func (o ConvOp) apply(b Backend, x *tensor.Volume) *tensor.Volume {
	return b.Conv(x, o.Kernels, o.Cfg, o.ReLU)
}

// PoolOp is a pooling step (digital on every backend).
type PoolOp struct {
	Max            bool
	Window, Stride int
}

func (o PoolOp) apply(_ Backend, x *tensor.Volume) *tensor.Volume {
	if o.Max {
		return tensor.MaxPool(x, o.Window, o.Stride)
	}
	return tensor.AvgPool(x, o.Window, o.Stride)
}

// ResidualOp runs a body and adds the block input (a ResNet basic
// block shape), applying ReLU to the sum. Shapes must match; use a
// strided body only with a matching Shortcut.
type ResidualOp struct {
	Body []Op
	// Shortcut optionally projects the block input (1x1 conv) before
	// the addition; nil means identity.
	Shortcut Op
}

func (o ResidualOp) apply(b Backend, x *tensor.Volume) *tensor.Volume {
	y := x
	for _, op := range o.Body {
		y = op.apply(b, y)
	}
	sc := x
	if o.Shortcut != nil {
		sc = o.Shortcut.apply(b, x)
	}
	return tensor.ReLU(tensor.Add(y, sc))
}

// Network is an ordered stack of ops ending in a classifier.
type Network struct {
	Name       string
	Ops        []Op
	Classifier *tensor.Kernels // FC kernels matching the final volume
}

// Features runs the feature extractor and returns the final volume.
func (n *Network) Features(b Backend, input *tensor.Volume) *tensor.Volume {
	x := input
	for _, op := range n.Ops {
		x = op.apply(b, x)
	}
	return x
}

// Run executes the whole network and returns the class logits.
func (n *Network) Run(b Backend, input *tensor.Volume) []float64 {
	x := n.Features(b, input)
	if n.Classifier == nil {
		panic("inference: network has no classifier") //lint:ignore exit-hygiene network constructed without a classifier; construction bug
	}
	return b.FullyConnected(x, n.Classifier, false)
}

// Predict returns the argmax class.
func (n *Network) Predict(b Backend, input *tensor.Volume) int {
	return Argmax(n.Run(b, input))
}

// Argmax returns the index of the largest logit (first on ties, -1 for
// empty input).
func Argmax(logits []float64) int {
	best, idx := math.Inf(-1), -1
	for i, v := range logits {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// Agreement runs a batch of inputs on two backends and returns the
// top-1 agreement fraction and the mean logit correlation - the
// end-to-end fidelity metrics of the analog pipeline.
func Agreement(n *Network, a, b Backend, inputs []*tensor.Volume) (top1 float64, corr float64) {
	if len(inputs) == 0 {
		return 0, 0
	}
	match := 0
	var corrSum float64
	for _, in := range inputs {
		la := n.Run(a, in)
		lb := n.Run(b, in)
		if Argmax(la) == Argmax(lb) {
			match++
		}
		corrSum += pearson(la, lb)
	}
	return float64(match) / float64(len(inputs)), corrSum / float64(len(inputs))
}

// pearson returns the correlation coefficient of two equal-length
// vectors (0 for degenerate inputs).
func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	n := float64(len(a))
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// String implements fmt.Stringer.
func (n *Network) String() string {
	return fmt.Sprintf("network{%s, %d ops}", n.Name, len(n.Ops))
}
