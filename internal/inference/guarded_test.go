package inference

import (
	"testing"

	"albireo/internal/core"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestGuardPassesHealthyLayers(t *testing.T) {
	t.Parallel()
	// A healthy chip under a generous budget never falls back, and the
	// guarded output is bit-identical to the raw analog output.
	net := TinyCNN(3, 16, 42)
	in := tensor.RandomVolume(3, 16, 16, 6000)
	raw := net.Run(NewAnalog(core.DefaultConfig()), in)
	g := Guard(NewAnalog(core.DefaultConfig()), Exact{}, 1.0)
	guarded := net.Run(g, in)
	if g.Fallbacks() != 0 {
		t.Fatalf("healthy run fell back %d times", g.Fallbacks())
	}
	if g.Checks() == 0 {
		t.Fatal("guard should sample layers")
	}
	for i := range raw {
		if raw[i] != guarded[i] {
			t.Fatalf("guarded healthy output diverged at %d", i)
		}
	}
}

func TestGuardFallsBackOverBudget(t *testing.T) {
	t.Parallel()
	// Wreck a unit without quarantining it: the guard catches the
	// corrupted layers and reroutes them to the exact reference, so the
	// final logits match the digital network closely.
	analog := NewAnalog(core.DefaultConfig())
	unit := analog.Chip.Groups()[0].Units()[0]
	for tap := 0; tap < 9; tap++ {
		unit.InjectFault(core.Fault{Kind: core.StuckMZM, Tap: tap, Value: 1})
	}
	net := TinyCNN(3, 16, 42)
	in := tensor.RandomVolume(3, 16, 16, 6100)

	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	g := Guard(analog, Exact{}, 0.5).Instrument(reg, trace)
	got := net.Run(g, in)
	if g.Fallbacks() == 0 {
		t.Fatal("corrupted layers should exceed the budget")
	}
	want := net.Run(Exact{}, in)
	if Argmax(got) != Argmax(want) {
		t.Error("guarded inference should track the exact classification")
	}
	snap := reg.Snapshot()
	if snap.SumCounters(MetricGuardChecks) != g.Checks() {
		t.Error("check counter")
	}
	if snap.SumCounters(MetricGuardFallbacks) != g.Fallbacks() {
		t.Error("fallback counter")
	}
	if trace.CountByKind()["backend-fallback"] != g.Fallbacks() {
		t.Error("each fallback should emit a backend-fallback event")
	}
}

func TestGuardSampling(t *testing.T) {
	t.Parallel()
	// SampleEvery=2 checks layers 1, 3, 5, ... of the call sequence;
	// TinyCNN has 3 compute layers (2 conv + fc), so 2 are sampled.
	g := Guard(NewAnalog(core.DefaultConfig()), Exact{}, 1.0)
	g.SampleEvery = 2
	net := TinyCNN(3, 16, 42)
	net.Run(g, tensor.RandomVolume(3, 16, 16, 6200))
	if g.Checks() != 2 {
		t.Errorf("sampled %d layers, want 2", g.Checks())
	}
}

func TestGuardIsDeterministic(t *testing.T) {
	t.Parallel()
	run := func() []float64 {
		analog := NewAnalog(core.DefaultConfig())
		analog.Chip.Groups()[2].Units()[0].InjectFault(core.Fault{Kind: core.DeadRing, Tap: 4, Column: 2})
		g := Guard(analog, Exact{}, 0.02)
		return TinyCNN(3, 16, 42).Run(g, tensor.RandomVolume(3, 16, 16, 6300))
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("guarded runs diverged at %d", i)
		}
	}
}
