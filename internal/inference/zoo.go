package inference

import "albireo/internal/tensor"

// Small synthetic networks for end-to-end validation. Weights follow
// the bell-shaped distribution the paper cites for trained CNNs; the
// networks are deterministic for a seed, so exact and analog runs see
// identical parameters.

// TinyCNN returns a LeNet-scale network for inZ x size x size inputs:
// two conv+pool stages and a 10-class head. It exercises the
// receptive-field mapping, pooling, and the FC mapping.
func TinyCNN(inZ, size int, seed int64) *Network {
	c1 := tensor.RandomKernels(8, inZ, 3, 3, seed)
	c2 := tensor.RandomKernels(16, 8, 3, 3, seed+1)
	s2 := size / 2 / 2
	head := tensor.RandomKernels(10, 16, s2, s2, seed+2)
	return &Network{
		Name: "tiny-cnn",
		Ops: []Op{
			ConvOp{Kernels: c1, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
			PoolOp{Max: true, Window: 2, Stride: 2},
			ConvOp{Kernels: c2, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
			PoolOp{Max: true, Window: 2, Stride: 2},
		},
		Classifier: head,
	}
}

// TinyMobile returns a depthwise-separable network (MobileNet-style):
// stem conv, two dw+pw blocks, average pool, classifier. It exercises
// the depthwise and pointwise mappings of Section III-C.
func TinyMobile(inZ, size int, seed int64) *Network {
	stem := tensor.RandomKernels(8, inZ, 3, 3, seed)
	dw1 := tensor.RandomKernels(8, 1, 3, 3, seed+1)
	pw1 := tensor.RandomKernels(16, 8, 1, 1, seed+2)
	dw2 := tensor.RandomKernels(16, 1, 3, 3, seed+3)
	pw2 := tensor.RandomKernels(24, 16, 1, 1, seed+4)
	s := size / 2
	head := tensor.RandomKernels(10, 24, s/2, s/2, seed+5)
	return &Network{
		Name: "tiny-mobile",
		Ops: []Op{
			ConvOp{Kernels: stem, Cfg: tensor.ConvConfig{Stride: 2, Pad: 1}, ReLU: true},
			ConvOp{Kernels: dw1, Cfg: tensor.ConvConfig{Pad: 1, Depthwise: true}, ReLU: true},
			ConvOp{Kernels: pw1, ReLU: true},
			ConvOp{Kernels: dw2, Cfg: tensor.ConvConfig{Stride: 2, Pad: 1, Depthwise: true}, ReLU: true},
			ConvOp{Kernels: pw2, ReLU: true},
		},
		Classifier: head,
	}
}

// TinyResNet returns a residual network: stem, one identity basic
// block, one strided block with a projection shortcut, classifier. It
// exercises the Branch/residual pattern of ResNet18.
func TinyResNet(inZ, size int, seed int64) *Network {
	stem := tensor.RandomKernels(8, inZ, 3, 3, seed)
	b1a := tensor.RandomKernels(8, 8, 3, 3, seed+1)
	b1b := tensor.RandomKernels(8, 8, 3, 3, seed+2)
	b2a := tensor.RandomKernels(16, 8, 3, 3, seed+3)
	b2b := tensor.RandomKernels(16, 16, 3, 3, seed+4)
	proj := tensor.RandomKernels(16, 8, 1, 1, seed+5)
	s := size / 2
	head := tensor.RandomKernels(10, 16, s, s, seed+6)
	return &Network{
		Name: "tiny-resnet",
		Ops: []Op{
			ConvOp{Kernels: stem, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
			ResidualOp{Body: []Op{
				ConvOp{Kernels: b1a, Cfg: tensor.ConvConfig{Pad: 1}, ReLU: true},
				ConvOp{Kernels: b1b, Cfg: tensor.ConvConfig{Pad: 1}},
			}},
			ResidualOp{
				Body: []Op{
					ConvOp{Kernels: b2a, Cfg: tensor.ConvConfig{Stride: 2, Pad: 1}, ReLU: true},
					ConvOp{Kernels: b2b, Cfg: tensor.ConvConfig{Pad: 1}},
				},
				Shortcut: ConvOp{Kernels: proj, Cfg: tensor.ConvConfig{Stride: 2}},
			},
		},
		Classifier: head,
	}
}
