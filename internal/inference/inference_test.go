package inference

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/tensor"
)

func idealBackend() Analog {
	cfg := core.DefaultConfig()
	cfg.DisableNoise = true
	cfg.DisableCrosstalk = true
	return NewAnalog(cfg)
}

func batch(n, z, size int, seed int64) []*tensor.Volume {
	out := make([]*tensor.Volume, n)
	for i := range out {
		out[i] = tensor.RandomVolume(z, size, size, seed+int64(i))
	}
	return out
}

func TestTinyCNNEndToEndIdeal(t *testing.T) {
	// With ideal devices, the analog chip should agree with the exact
	// backend on most classifications. Random-weight networks produce
	// nearly-tied logits, so top-1 flips on tiny converter-floor
	// errors; the correlation is the robust fidelity signal.
	net := TinyCNN(3, 16, 42)
	inputs := batch(20, 3, 16, 1000)
	top1, corr := Agreement(net, Exact{}, idealBackend(), inputs)
	if top1 < 0.75 {
		t.Errorf("ideal top-1 agreement = %.2f, want >= 0.75", top1)
	}
	if corr < 0.97 {
		t.Errorf("ideal logit correlation = %.3f, want >= 0.97", corr)
	}
}

func TestTinyCNNEndToEndRealistic(t *testing.T) {
	// With crosstalk and noise, agreement degrades but stays high -
	// the end-to-end counterpart of the paper's 7-bit precision
	// argument.
	net := TinyCNN(3, 16, 42)
	inputs := batch(20, 3, 16, 2000)
	top1, corr := Agreement(net, Exact{}, NewAnalog(core.DefaultConfig()), inputs)
	if top1 < 0.6 {
		t.Errorf("realistic top-1 agreement = %.2f, want >= 0.6", top1)
	}
	if corr < 0.9 {
		t.Errorf("realistic logit correlation = %.3f, want >= 0.9", corr)
	}
}

func TestTinyMobileEndToEnd(t *testing.T) {
	net := TinyMobile(3, 16, 43)
	inputs := batch(12, 3, 16, 3000)
	top1, corr := Agreement(net, Exact{}, idealBackend(), inputs)
	if top1 < 0.7 {
		t.Errorf("tiny-mobile ideal agreement = %.2f, want >= 0.7", top1)
	}
	if corr < 0.95 {
		t.Errorf("tiny-mobile logit correlation = %.3f, want >= 0.95", corr)
	}
}

func TestTinyResNetEndToEnd(t *testing.T) {
	net := TinyResNet(3, 16, 44)
	inputs := batch(12, 3, 16, 4000)
	top1, corr := Agreement(net, Exact{}, idealBackend(), inputs)
	if top1 < 0.65 {
		t.Errorf("tiny-resnet ideal agreement = %.2f, want >= 0.65", top1)
	}
	if corr < 0.93 {
		t.Errorf("tiny-resnet logit correlation = %.3f, want >= 0.93", corr)
	}
}

func TestExactBackendMatchesTensorOps(t *testing.T) {
	// The exact backend is a thin veneer over internal/tensor.
	a := tensor.RandomVolume(3, 8, 8, 50)
	w := tensor.RandomKernels(4, 3, 3, 3, 51)
	got := Exact{}.Conv(a, w, tensor.ConvConfig{Pad: 1}, true)
	want := tensor.ReLU(tensor.Conv(a, w, tensor.ConvConfig{Pad: 1}))
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("exact backend must match tensor ops bit-for-bit")
		}
	}
	if (Exact{}).Name() != "exact" {
		t.Error("backend name")
	}
}

func TestAnalogBackendRoutesPointwise(t *testing.T) {
	// 1x1 stride-1 dense kernels go through the pointwise mapping;
	// this must produce the same shape and close values as Conv.
	b := idealBackend()
	a := tensor.RandomVolume(12, 6, 6, 52)
	w := tensor.RandomKernels(4, 12, 1, 1, 53)
	got := b.Conv(a, w, tensor.ConvConfig{}, false)
	want := tensor.Conv(a, w, tensor.ConvConfig{})
	if got.Z != want.Z || got.Y != want.Y || got.X != want.X {
		t.Fatal("pointwise routing changed the output shape")
	}
	var num, den float64
	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	if e := math.Sqrt(num / den); e > 0.12 {
		t.Errorf("pointwise-routed conv RMS error %.3f", e)
	}
}

func TestResidualOpIdentity(t *testing.T) {
	// A residual block whose body outputs zero reproduces ReLU(input).
	zero := tensor.NewKernels(4, 4, 3, 3)
	block := ResidualOp{Body: []Op{ConvOp{Kernels: zero, Cfg: tensor.ConvConfig{Pad: 1}}}}
	x := tensor.RandomVolume(4, 5, 5, 60)
	out := block.apply(Exact{}, x)
	for i := range x.Data {
		want := x.Data[i]
		if want < 0 {
			want = 0
		}
		if math.Abs(out.Data[i]-want) > 1e-12 {
			t.Fatal("zero-body residual should be ReLU(identity)")
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Error("argmax")
	}
	if Argmax([]float64{5}) != 0 {
		t.Error("singleton argmax")
	}
	if Argmax(nil) != -1 {
		t.Error("empty argmax should be -1")
	}
	if Argmax([]float64{2, 2}) != 0 {
		t.Error("tie should pick the first")
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if math.Abs(pearson(a, a)-1) > 1e-12 {
		t.Error("self correlation should be 1")
	}
	b := []float64{4, 3, 2, 1}
	if math.Abs(pearson(a, b)+1) > 1e-12 {
		t.Error("reversed correlation should be -1")
	}
	if pearson(a, []float64{1, 1, 1, 1}) != 0 {
		t.Error("constant vector correlation is degenerate (0)")
	}
	if pearson(a, a[:2]) != 0 {
		t.Error("length mismatch is degenerate (0)")
	}
}

func TestAgreementDegenerate(t *testing.T) {
	net := TinyCNN(3, 16, 42)
	top1, corr := Agreement(net, Exact{}, Exact{}, nil)
	if top1 != 0 || corr != 0 {
		t.Error("empty batch should return zeros")
	}
}

func TestRunWithoutClassifierPanics(t *testing.T) {
	n := &Network{Name: "headless"}
	defer func() {
		if recover() == nil {
			t.Error("Run without classifier should panic")
		}
	}()
	n.Run(Exact{}, tensor.RandomVolume(1, 4, 4, 70))
}

func TestNetworkString(t *testing.T) {
	if TinyCNN(3, 16, 1).String() == "" {
		t.Error("String")
	}
	if NewAnalog(core.DefaultConfig()).Name() != "albireo-C" {
		t.Error("analog backend name")
	}
}
