package inference

import (
	"fmt"
	"math"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Metric names emitted by the observed backend wrapper.
const (
	// MetricInferenceLayers counts executed layers by kind
	// (label kind="conv"|"fc"|"gemm", backend="...").
	MetricInferenceLayers = "albireo_inference_layers_total"
	// MetricLayerDivergence is the histogram of per-layer RMS
	// divergence between the wrapped backend and a digital reference,
	// recorded only when a reference backend is attached.
	MetricLayerDivergence = "albireo_inference_layer_divergence_rms"
)

// Observed wraps a Backend with layer-granular observability: every
// Conv and FullyConnected call is enclosed in a trace span carrying
// backend name and shapes, counted in the registry, and - when a
// reference backend is attached - scored for analog-vs-digital RMS
// divergence into a histogram. Telemetry is shape- and
// value-denominated only (no wall clock), so identical inputs always
// observe identically.
type Observed struct {
	Backend Backend
	// Ref, when non-nil, re-executes each layer on a reference backend
	// (typically Exact) and records the RMS divergence. The reference
	// output is discarded; the wrapped backend's output flows onward,
	// so the observed network still computes the analog result.
	Ref   Backend
	Reg   *obs.Registry
	Trace *obs.Trace
}

// Observe wraps b with the given instruments. Either may be nil.
func Observe(b Backend, reg *obs.Registry, trace *obs.Trace) *Observed {
	return &Observed{Backend: b, Reg: reg, Trace: trace}
}

// WithReference attaches a reference backend for divergence scoring
// and returns the wrapper for chaining.
func (o *Observed) WithReference(ref Backend) *Observed {
	o.Ref = ref
	return o
}

// Name implements Backend.
func (o *Observed) Name() string { return o.Backend.Name() }

func (o *Observed) count(kind string) {
	o.Reg.Counter(MetricInferenceLayers,
		obs.L("kind", kind), obs.L("backend", o.Backend.Name())).Inc()
}

// Conv implements Backend.
func (o *Observed) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	o.count("conv")
	sp := o.Trace.StartSpan("inference/conv",
		obs.String("backend", o.Backend.Name()),
		obs.String("input", fmt.Sprintf("%dx%dx%d", a.Z, a.Y, a.X)),
		obs.String("kernels", fmt.Sprintf("%dx%dx%dx%d", w.M, w.Z, w.Y, w.X)))
	out := o.Backend.Conv(a, w, cfg, relu)
	if o.Ref != nil {
		ref := o.Ref.Conv(a, w, cfg, relu)
		d := rms(out.Data, ref.Data)
		o.Reg.Histogram(MetricLayerDivergence, obs.DefaultBuckets).Observe(d)
		sp.End(obs.String("divergence_rms", fmt.Sprintf("%.3e", d)))
		return out
	}
	sp.End()
	return out
}

// FullyConnected implements Backend.
func (o *Observed) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	o.count("fc")
	sp := o.Trace.StartSpan("inference/fc",
		obs.String("backend", o.Backend.Name()),
		obs.String("input", fmt.Sprintf("%dx%dx%d", a.Z, a.Y, a.X)),
		obs.String("kernels", fmt.Sprintf("%dx%dx%dx%d", w.M, w.Z, w.Y, w.X)))
	out := o.Backend.FullyConnected(a, w, relu)
	if o.Ref != nil {
		ref := o.Ref.FullyConnected(a, w, relu)
		d := rms(out, ref)
		o.Reg.Histogram(MetricLayerDivergence, obs.DefaultBuckets).Observe(d)
		sp.End(obs.String("divergence_rms", fmt.Sprintf("%.3e", d)))
		return out
	}
	sp.End()
	return out
}

// GEMM implements Backend.
func (o *Observed) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	o.count("gemm")
	sp := o.Trace.StartSpan("inference/gemm",
		obs.String("backend", o.Backend.Name()),
		obs.String("a", fmt.Sprintf("%dx%d", a.R, a.C)),
		obs.String("b", fmt.Sprintf("%dx%d", b.R, b.C)))
	out := o.Backend.GEMM(a, b, relu)
	if o.Ref != nil {
		ref := o.Ref.GEMM(a, b, relu)
		d := rms(out.Data, ref.Data)
		o.Reg.Histogram(MetricLayerDivergence, obs.DefaultBuckets).Observe(d)
		sp.End(obs.String("divergence_rms", fmt.Sprintf("%.3e", d)))
		return out
	}
	sp.End()
	return out
}

// rms returns the root-mean-square difference of two equal-length
// vectors (0 for degenerate input).
func rms(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}
