package inference

import (
	"fmt"
	"sync/atomic"

	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// Metric names emitted by the guarded backend.
const (
	// MetricGuardChecks counts layers whose divergence was sampled
	// against the reference backend.
	MetricGuardChecks = "albireo_inference_guard_checks_total"
	// MetricGuardFallbacks counts layers rerouted to the reference
	// because their divergence exceeded the budget.
	MetricGuardFallbacks = "albireo_inference_guard_fallbacks_total"
)

// Guarded is an accuracy-guarded backend: layers execute on the analog
// backend, and sampled layers are re-executed on a digital reference
// and scored for RMS divergence. A layer over budget returns the
// reference output instead - the network keeps computing correct
// activations while the analog fabric degrades, at the energy cost of
// the digital recompute. This is the last line of graceful
// degradation: BIST + quarantine remove known-bad units, and the guard
// catches whatever silent corruption remains.
//
// The guard is deterministic: sampling is layer-count-denominated (no
// clocks, no randomness), and the analog backend still executes every
// layer (its noise streams advance identically whether or not the
// guard falls back), so guarded and unguarded runs of the same inputs
// stay reproducible.
type Guarded struct {
	// Backend executes every layer (typically Analog).
	Backend Backend
	// Ref is the digital reference (typically Exact) used for sampled
	// divergence checks and as the fallback output.
	Ref Backend
	// Budget is the maximum tolerated per-layer relative divergence:
	// RMS(out - ref) / RMS(ref), a scale-free fraction (layer
	// activations grow with fan-in, so an absolute budget would mean
	// something different at every depth). At or under budget the
	// analog output flows onward; over it the reference output does.
	// Layers with an all-zero reference are scored on absolute RMS.
	Budget float64
	// SampleEvery checks every Nth layer (1 = every layer). Unchecked
	// layers always pass the analog output through.
	SampleEvery int
	// FallbackHook, when non-nil, is called with the layer-op kind
	// ("conv", "fc", or "gemm") each time a layer falls back to the
	// reference.
	// The serving front end uses it to journal guarded-fallback events
	// per worker. Set before serving begins; it is read without
	// synchronization.
	FallbackHook func(kind string)

	reg       *obs.Registry
	trace     *obs.Trace
	layers    atomic.Int64
	checks    atomic.Int64
	fallbacks atomic.Int64
}

// Guard wraps an analog backend with an accuracy guard against ref.
// SampleEvery defaults to 1 (every layer checked).
func Guard(b, ref Backend, budget float64) *Guarded {
	return &Guarded{Backend: b, Ref: ref, Budget: budget, SampleEvery: 1}
}

// Instrument attaches an observability registry and/or trace and
// returns the backend for chaining. Either may be nil.
func (g *Guarded) Instrument(reg *obs.Registry, trace *obs.Trace) *Guarded {
	g.reg = reg
	g.trace = trace
	return g
}

// Name implements Backend.
func (g *Guarded) Name() string { return "guarded(" + g.Backend.Name() + ")" }

// Fallbacks returns how many layers have been rerouted to the
// reference so far.
func (g *Guarded) Fallbacks() int64 { return g.fallbacks.Load() }

// Checks returns how many layers have been divergence-sampled.
func (g *Guarded) Checks() int64 { return g.checks.Load() }

// sampled reports whether this layer call is divergence-checked.
func (g *Guarded) sampled() bool {
	n := g.layers.Add(1)
	every := int64(g.SampleEvery)
	if every <= 1 {
		return true
	}
	return (n-1)%every == 0
}

// guard scores the analog output against the reference and picks the
// survivor. Both slices must be equal length.
func (g *Guarded) guard(kind string, out, ref []float64) bool {
	g.checks.Add(1)
	g.reg.Counter(MetricGuardChecks).Inc()
	d := rms(out, ref)
	if scale := rmsMagnitude(ref); scale > 0 {
		d /= scale
	}
	g.reg.Histogram(MetricLayerDivergence, obs.DefaultBuckets).Observe(d)
	if d <= g.Budget {
		return false
	}
	g.fallbacks.Add(1)
	g.reg.Counter(MetricGuardFallbacks).Inc()
	if g.FallbackHook != nil {
		g.FallbackHook(kind)
	}
	if g.trace != nil {
		sp := g.trace.StartSpan("inference/guard")
		sp.Event(obs.BackendFallback, kind,
			obs.String("backend", g.Backend.Name()),
			obs.String("divergence_rms", fmt.Sprintf("%.3e", d)),
			obs.String("budget", fmt.Sprintf("%.3e", g.Budget)))
		sp.End()
	}
	return true
}

// rmsMagnitude returns the root-mean-square of a vector (its signal
// scale), 0 for empty input.
func rmsMagnitude(v []float64) float64 {
	return rms(v, make([]float64, len(v)))
}

// Conv implements Backend.
func (g *Guarded) Conv(a *tensor.Volume, w *tensor.Kernels, cfg tensor.ConvConfig, relu bool) *tensor.Volume {
	out := g.Backend.Conv(a, w, cfg, relu)
	if !g.sampled() {
		return out
	}
	ref := g.Ref.Conv(a, w, cfg, relu)
	if g.guard("conv", out.Data, ref.Data) {
		return ref
	}
	return out
}

// FullyConnected implements Backend.
func (g *Guarded) FullyConnected(a *tensor.Volume, w *tensor.Kernels, relu bool) []float64 {
	out := g.Backend.FullyConnected(a, w, relu)
	if !g.sampled() {
		return out
	}
	ref := g.Ref.FullyConnected(a, w, relu)
	if g.guard("fc", out, ref) {
		return ref
	}
	return out
}

// GEMM implements Backend.
func (g *Guarded) GEMM(a, b *tensor.Matrix, relu bool) *tensor.Matrix {
	out := g.Backend.GEMM(a, b, relu)
	if !g.sampled() {
		return out
	}
	ref := g.Ref.GEMM(a, b, relu)
	if g.guard("gemm", out.Data, ref.Data) {
		return ref
	}
	return out
}
