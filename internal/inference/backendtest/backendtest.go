// Package backendtest is a conformance suite for inference.Backend
// implementations. Every backend in the repo - the exact digital
// reference, the analog chip, the observed and guarded wrappers, and
// the fleet-bound pool - must satisfy the same layer contract: correct
// output geometry for dense/strided/pointwise/depthwise/grouped
// convolutions, classifiers, and dense GEMMs, finite outputs,
// non-negative outputs
// under ReLU, deterministic repeatability from a fresh backend, and
// bounded divergence from the exact reference. Running one shared
// table against all of them closes the gap where each backend was
// tested ad hoc.
package backendtest

import (
	"math"
	"testing"

	"albireo/internal/inference"
	"albireo/internal/tensor"
)

// Factory builds a fresh backend. It is called once per subtest (and
// twice for the repeatability case), so it must return deterministic,
// independent instances: same construction, same outputs.
type Factory func(t *testing.T) inference.Backend

// convCase is one convolution geometry in the conformance table.
type convCase struct {
	name    string
	inZ     int
	size    int
	kernels func(seed int64) *tensor.Kernels
	cfg     tensor.ConvConfig
	relu    bool
}

// cases covers the layer geometries the Albireo mapping distinguishes:
// receptive-field convs, strides, the pointwise fast path, depthwise
// and grouped variants.
func cases() []convCase {
	return []convCase{
		{
			name: "dense-3x3-pad1-relu",
			inZ:  3, size: 10,
			kernels: func(seed int64) *tensor.Kernels { return tensor.RandomKernels(4, 3, 3, 3, seed) },
			cfg:     tensor.ConvConfig{Stride: 1, Pad: 1},
			relu:    true,
		},
		{
			name: "dense-3x3-stride2",
			inZ:  3, size: 11,
			kernels: func(seed int64) *tensor.Kernels { return tensor.RandomKernels(5, 3, 3, 3, seed) },
			cfg:     tensor.ConvConfig{Stride: 2, Pad: 1},
		},
		{
			name: "pointwise-1x1",
			inZ:  6, size: 8,
			kernels: func(seed int64) *tensor.Kernels { return tensor.RandomKernels(4, 6, 1, 1, seed) },
			cfg:     tensor.ConvConfig{Stride: 1},
			relu:    true,
		},
		{
			name: "depthwise-3x3",
			inZ:  4, size: 9,
			kernels: func(seed int64) *tensor.Kernels { return tensor.RandomKernels(4, 1, 3, 3, seed) },
			cfg:     tensor.ConvConfig{Stride: 1, Pad: 1, Depthwise: true},
		},
		{
			name: "grouped-3x3",
			inZ:  4, size: 9,
			kernels: func(seed int64) *tensor.Kernels { return tensor.RandomKernels(4, 2, 3, 3, seed) },
			cfg:     tensor.ConvConfig{Stride: 1, Pad: 1, Groups: 2},
		},
	}
}

// Run exercises the conformance table against backends built by mk.
func Run(t *testing.T, mk Factory) {
	exact := inference.Exact{}

	for _, tc := range cases() {
		t.Run("conv/"+tc.name, func(t *testing.T) {
			b := mk(t)
			in := tensor.RandomVolume(tc.inZ, tc.size, tc.size, 41)
			w := tc.kernels(42)
			out := b.Conv(in, w, tc.cfg, tc.relu)
			ref := exact.Conv(in, w, tc.cfg, tc.relu)
			if out.Z != ref.Z || out.Y != ref.Y || out.X != ref.X {
				t.Fatalf("%s: output shape %dx%dx%d, want %dx%dx%d",
					b.Name(), out.Z, out.Y, out.X, ref.Z, ref.Y, ref.X)
			}
			checkFinite(t, b.Name(), out.Data)
			if tc.relu {
				for i, v := range out.Data {
					if v < 0 {
						t.Fatalf("%s: ReLU output[%d] = %g < 0", b.Name(), i, v)
					}
				}
			}
			if r := relRMS(out.Data, ref.Data); !(r < 0.5) {
				t.Fatalf("%s: relative RMS divergence from exact = %g, want < 0.5", b.Name(), r)
			}
		})
	}

	t.Run("fully-connected", func(t *testing.T) {
		b := mk(t)
		in := tensor.RandomVolume(4, 6, 6, 43)
		w := tensor.RandomKernels(10, 4, 6, 6, 44)
		out := b.FullyConnected(in, w, false)
		ref := exact.FullyConnected(in, w, false)
		if len(out) != len(ref) {
			t.Fatalf("%s: %d logits, want %d", b.Name(), len(out), len(ref))
		}
		checkFinite(t, b.Name(), out)
		if r := relRMS(out, ref); !(r < 0.5) {
			t.Fatalf("%s: relative RMS divergence from exact = %g, want < 0.5", b.Name(), r)
		}
	})

	t.Run("fully-connected-relu", func(t *testing.T) {
		b := mk(t)
		in := tensor.RandomVolume(4, 6, 6, 45)
		w := tensor.RandomKernels(10, 4, 6, 6, 46)
		for i, v := range b.FullyConnected(in, w, true) {
			if v < 0 {
				t.Fatalf("%s: ReLU logit[%d] = %g < 0", b.Name(), i, v)
			}
		}
	})

	t.Run("gemm/signed", func(t *testing.T) {
		b := mk(t)
		a := tensor.RandomMatrix(7, 20, 51)
		w := tensor.RandomMatrix(20, 9, 52)
		out := b.GEMM(a, w, false)
		ref := exact.GEMM(a, w, false)
		if out.R != ref.R || out.C != ref.C {
			t.Fatalf("%s: GEMM shape %dx%d, want %dx%d", b.Name(), out.R, out.C, ref.R, ref.C)
		}
		checkFinite(t, b.Name(), out.Data)
		if r := relRMS(out.Data, ref.Data); !(r < 0.5) {
			t.Fatalf("%s: relative RMS divergence from exact = %g, want < 0.5", b.Name(), r)
		}
	})

	t.Run("gemm/nonneg-relu", func(t *testing.T) {
		b := mk(t)
		a := tensor.RandomNonNegMatrix(6, 16, 53)
		w := tensor.RandomMatrix(16, 8, 54)
		out := b.GEMM(a, w, true)
		ref := exact.GEMM(a, w, true)
		checkFinite(t, b.Name(), out.Data)
		for i, v := range out.Data {
			if v < 0 {
				t.Fatalf("%s: ReLU GEMM output[%d] = %g < 0", b.Name(), i, v)
			}
		}
		if r := relRMS(out.Data, ref.Data); !(r < 0.5) {
			t.Fatalf("%s: relative RMS divergence from exact = %g, want < 0.5", b.Name(), r)
		}
	})

	t.Run("gemm/repeatable", func(t *testing.T) {
		// Same contract as conv: fresh backends, bit-identical GEMMs.
		a := tensor.RandomMatrix(5, 12, 55)
		w := tensor.RandomMatrix(12, 6, 56)
		x := mk(t).GEMM(a, w, false)
		y := mk(t).GEMM(a, w, false)
		if x.R != y.R || x.C != y.C {
			t.Fatalf("GEMM shapes differ: %dx%d vs %dx%d", x.R, x.C, y.R, y.C)
		}
		for i := range x.Data {
			if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
				t.Fatalf("GEMM output[%d] differs across fresh backends: %g vs %g",
					i, x.Data[i], y.Data[i])
			}
		}
	})

	t.Run("name", func(t *testing.T) {
		if mk(t).Name() == "" {
			t.Fatal("backend has an empty name")
		}
	})

	t.Run("repeatable", func(t *testing.T) {
		// Two independently constructed backends must produce
		// bit-identical outputs for the same work: noise is seeded, so
		// determinism - the repo-wide invariant - is part of the
		// Backend contract.
		in := tensor.RandomVolume(3, 10, 10, 47)
		w := tensor.RandomKernels(4, 3, 3, 3, 48)
		cfg := tensor.ConvConfig{Stride: 1, Pad: 1}
		a := mk(t).Conv(in, w, cfg, true)
		b := mk(t).Conv(in, w, cfg, true)
		if len(a.Data) != len(b.Data) {
			t.Fatalf("output sizes differ: %d vs %d", len(a.Data), len(b.Data))
		}
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("output[%d] differs across fresh backends: %g vs %g",
					i, a.Data[i], b.Data[i])
			}
		}
	})
}

// checkFinite fails on NaN or Inf anywhere in the output.
func checkFinite(t *testing.T, name string, data []float64) {
	t.Helper()
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: output[%d] = %g is not finite", name, i, v)
		}
	}
}

// relRMS returns the RMS of (got - want) relative to the RMS of want.
func relRMS(got, want []float64) float64 {
	if len(got) != len(want) || len(want) == 0 {
		return math.Inf(1)
	}
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den <= 0 {
		return math.Sqrt(num / float64(len(want)))
	}
	return math.Sqrt(num / den)
}
