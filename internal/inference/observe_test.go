package inference

import (
	"math"
	"testing"

	"albireo/internal/core"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func TestObservedBackendTelemetry(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	ob := Observe(NewAnalog(core.DefaultConfig()), reg, tr).WithReference(Exact{})

	a := tensor.RandomVolume(3, 8, 8, 31)
	w := tensor.RandomKernels(4, 3, 3, 3, 32)
	out := ob.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	fcW := tensor.RandomKernels(5, 4, 8, 8, 33)
	logits := ob.FullyConnected(out, fcW, false)
	if len(logits) != 5 {
		t.Fatalf("wrapper changed FC output arity: %d", len(logits))
	}

	s := reg.Snapshot()
	name := ob.Name()
	if got := s.Counters[MetricInferenceLayers+`{backend="`+name+`",kind="conv"}`]; got != 1 {
		t.Errorf("conv layer count = %d: %v", got, s.Counters)
	}
	if got := s.Counters[MetricInferenceLayers+`{backend="`+name+`",kind="fc"}`]; got != 1 {
		t.Errorf("fc layer count = %d: %v", got, s.Counters)
	}
	h, ok := s.Histograms[MetricLayerDivergence]
	if !ok || h.Count != 2 {
		t.Fatalf("divergence histogram missing or wrong count: %+v", s.Histograms)
	}
	if h.Sum <= 0 {
		t.Error("analog-vs-exact divergence should be nonzero under noise")
	}
	kinds := tr.CountByKind()
	if kinds["span-start"] != 2 || kinds["span-end"] != 2 {
		t.Errorf("want one span per layer: %v", kinds)
	}
}

func TestObservedMatchesWrappedBackend(t *testing.T) {
	t.Parallel()
	// The wrapper must be numerically transparent: same outputs as the
	// wrapped backend alone, with or without a reference attached.
	a := tensor.RandomVolume(3, 8, 8, 41)
	w := tensor.RandomKernels(2, 3, 3, 3, 42)

	plain := NewAnalog(core.DefaultConfig())
	wrapped := Observe(NewAnalog(core.DefaultConfig()), obs.NewRegistry(), nil).WithReference(Exact{})

	po := plain.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	wo := wrapped.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, true)
	for i := range po.Data {
		if po.Data[i] != wo.Data[i] {
			t.Fatalf("wrapper perturbed output at %d: %g vs %g", i, po.Data[i], wo.Data[i])
		}
	}
}

func TestObservedNilInstruments(t *testing.T) {
	t.Parallel()
	// All-nil instruments: the wrapper degrades to a pass-through.
	ob := Observe(Exact{}, nil, nil)
	a := tensor.RandomVolume(2, 4, 4, 51)
	w := tensor.RandomKernels(2, 2, 3, 3, 52)
	out := ob.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false)
	want := Exact{}.Conv(a, w, tensor.ConvConfig{Stride: 1, Pad: 1}, false)
	for i := range want.Data {
		if out.Data[i] != want.Data[i] {
			t.Fatal("nil-instrumented wrapper must be a pass-through")
		}
	}
	if ob.Name() != (Exact{}).Name() {
		t.Fatal("wrapper must forward the backend name")
	}
}

func TestRMS(t *testing.T) {
	t.Parallel()
	if rms(nil, nil) != 0 || rms([]float64{1}, []float64{1, 2}) != 0 {
		t.Fatal("degenerate rms must be 0")
	}
	// one zero diff and one diff of 2 over two elements: sqrt(4/2)
	if got := rms([]float64{1, 2}, []float64{1, 4}); got != math.Sqrt(2) {
		t.Fatalf("rms = %g", got)
	}
}
