package experiments

import (
	"fmt"
	"strings"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/train"
)

// BitwidthRow is one point of the converter-resolution sweep: the
// end-to-end accuracy of a trained model deployed on the analog chip
// with b-bit DACs/ADCs.
type BitwidthRow struct {
	Bits        int
	AccuracyPct float64
}

// BitwidthSweep trains the small CNN once and deploys it across
// converter resolutions with full impairments - the end-to-end version
// of the paper's "8-bit integer quantization is common ... yields
// competitive accuracy" argument (Section II-C.2), and the reason the
// 7-bit crosstalk budget of Figure 4c matters.
func BitwidthSweep(bits []int, testN int) []BitwidthRow {
	xs, labels := train.SyntheticDataset(150, 12, 8)
	net := train.NewSmallNet(12, 3, 9)
	net.Train(xs, labels, train.DefaultHyper())
	testX, testY := train.SyntheticDataset(testN, 12, 4242)

	rows := make([]BitwidthRow, 0, len(bits))
	for _, b := range bits {
		cfg := core.DefaultConfig()
		cfg.DACBits = b
		cfg.ADCBits = b
		acc := train.AnalogAccuracy(net, inference.NewAnalog(cfg), testX, testY)
		rows = append(rows, BitwidthRow{Bits: b, AccuracyPct: acc * 100})
	}
	return rows
}

// FormatBitwidth renders the sweep.
func FormatBitwidth(rows []BitwidthRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Converter bit-width vs trained-model analog accuracy (full impairments)")
	fmt.Fprintln(&b, "bits  accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d  %7.1f%%\n", r.Bits, r.AccuracyPct)
	}
	return b.String()
}
