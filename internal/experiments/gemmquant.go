package experiments

import (
	"fmt"
	"math"
	"strings"

	"albireo/internal/nn"
	"albireo/internal/tensor"
)

// GEMMQuantRow is one point of the integer-GEMM sweep: the relative
// RMS error and the top-1 agreement of a b-bit QuantizedMLP head
// against the float reference on the same inputs.
type GEMMQuantRow struct {
	Bits         int
	RelRMS       float64
	AgreementPct float64
}

// GEMMQuantSweep measures the end-to-end integer inference path of an
// MLP head across code widths: weights in signed symmetric codes,
// activations on per-tensor affine grids, int64 accumulation, one
// requantize multiply per layer. The float ExactGEMM forward pass is
// the reference; agreement is argmax match over the batch - the
// serving-mode accuracy currency of the EXPERIMENTS.md sweep.
func GEMMQuantSweep(bits []int, batch int) []GEMMQuantRow {
	m := nn.NewMLP("sweep-head", []int{32, 48, 10}, 11)
	x := tensor.RandomMatrix(batch, 32, 13)
	want := m.Forward(nn.ExactGEMM{}, x)

	rows := make([]GEMMQuantRow, 0, len(bits))
	for _, b := range bits {
		got := nn.QuantizeMLP(m, b).Forward(x)
		rows = append(rows, GEMMQuantRow{
			Bits:         b,
			RelRMS:       relRMSMat(got, want),
			AgreementPct: 100 * argmaxAgreement(got, want),
		})
	}
	return rows
}

func relRMSMat(got, want *tensor.Matrix) float64 {
	var num, den float64
	for i := range got.Data {
		d := got.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func argmaxAgreement(got, want *tensor.Matrix) float64 {
	match := 0
	for r := 0; r < got.R; r++ {
		if rowArgmax(got, r) == rowArgmax(want, r) {
			match++
		}
	}
	return float64(match) / float64(got.R)
}

func rowArgmax(m *tensor.Matrix, r int) int {
	best, bestV := 0, math.Inf(-1)
	for c := 0; c < m.C; c++ {
		if v := m.At(r, c); v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// FormatGEMMQuant renders the sweep.
func FormatGEMMQuant(rows []GEMMQuantRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Integer-GEMM code width vs float-reference fidelity (MLP head, per-tensor affine activations)")
	fmt.Fprintln(&b, "bits  rel-RMS   top-1 agreement")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d  %7.4f  %7.1f%%\n", r.Bits, r.RelRMS, r.AgreementPct)
	}
	return b.String()
}
