package experiments

import (
	"fmt"
	"strings"

	"albireo/internal/circuit"
	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
	"albireo/internal/sim"
	"albireo/internal/units"
)

// Extended experiments: analyses this repository adds beyond the
// paper's figures (see EXPERIMENTS.md "Beyond-the-paper analyses").

// DataflowRow compares the two PLCG dataflows on one network.
type DataflowRow struct {
	Model     string
	Dataflow  string
	Cycles    int64
	TrafficMB float64
	EnergyUJ  float64
}

// DataflowComparison runs the Section III-B ablation on every
// benchmark.
func DataflowComparison() []DataflowRow {
	var rows []DataflowRow
	for _, m := range nn.Benchmarks() {
		df, ws := sim.Compare(core.DefaultConfig(), m)
		rows = append(rows,
			DataflowRow{m.Name, sim.DepthFirst.String(), df.Cycles, float64(df.Traffic) / units.Mega, df.SRAMEnergy * units.Mega},
			DataflowRow{m.Name, sim.WeightStationary.String(), ws.Cycles, float64(ws.Traffic) / units.Mega, ws.SRAMEnergy * units.Mega},
		)
	}
	return rows
}

// FormatDataflow renders the comparison.
func FormatDataflow(rows []DataflowRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Dataflow ablation (Section III-B): depth-first vs weight-stationary")
	fmt.Fprintln(&b, "model       dataflow           cycles       traffic(MB)  movement(uJ)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %-17s  %-11d  %11.2f  %12.2f\n",
			r.Model, r.Dataflow, r.Cycles, r.TrafficMB, r.EnergyUJ)
	}
	return b.String()
}

// EnergyRow is the refined-energy comparison for one network.
type EnergyRow struct {
	Model      string
	FlatMJ     float64
	GatedMJ    float64
	SRAMMJ     float64
	SavingsPct float64
}

// EnergyRefinement computes the gating + traffic refinement for every
// benchmark on Albireo-C.
func EnergyRefinement() []EnergyRow {
	var rows []EnergyRow
	for _, m := range nn.Benchmarks() {
		eb := perf.EvaluateEnergy(core.DefaultConfig(), m)
		rows = append(rows, EnergyRow{
			Model:      m.Name,
			FlatMJ:     eb.Flat * units.Kilo,
			GatedMJ:    eb.Gated * units.Kilo,
			SRAMMJ:     eb.SRAM * units.Kilo,
			SavingsPct: eb.Savings() * 100,
		})
	}
	return rows
}

// FormatEnergy renders the refinement.
func FormatEnergy(rows []EnergyRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Energy accounting refinement (idle-PLCG gating + explicit SRAM traffic)")
	fmt.Fprintln(&b, "model       flat(mJ)  gated(mJ)  sram(mJ)  savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %8.3f  %9.3f  %8.4f  %6.1f%%\n",
			r.Model, r.FlatMJ, r.GatedMJ, r.SRAMMJ, r.SavingsPct)
	}
	return b.String()
}

// FormatLink renders the channel-resolved distribution budget.
func FormatLink() string {
	var b strings.Builder
	fmt.Fprintln(&b, "WDM link budget (63 channels, 2 mW lasers)")
	fmt.Fprintln(&b, "design  worst(uW)  best(uW)  spread(dB)  loss(dB)  worst-I(uA)")
	for _, ng := range []int{9, 27} {
		bb := circuit.NewLink(ng, 63, 2*units.Milli).Analyze()
		fmt.Fprintf(&b, "Ng=%-3d  %9.3f  %8.3f  %10.3f  %8.1f  %11.3f\n",
			ng, bb.WorstPower*units.Mega, bb.BestPower*units.Mega, bb.SpreadDB,
			bb.EndToEndLossDB, bb.WorstCurrent*units.Mega)
	}
	plan := circuit.NewChannelPlan(21, 3)
	fmt.Fprintf(&b, "channel plan: %v (fits AWG FSR: %v, inter-unit leakage %.2g)\n",
		plan, plan.Fits(), plan.InterUnitIsolation(1))
	return b.String()
}

// FeasibilityRow summarizes one network's memory-system fit.
type FeasibilityRow struct {
	Model         string
	Layers        int
	CacheMisfits  int
	BufferMisfits int
}

// FeasibilityReport checks every benchmark against the memory
// subsystems.
func FeasibilityReport() []FeasibilityRow {
	var rows []FeasibilityRow
	for _, m := range nn.Benchmarks() {
		mf := sim.CheckModel(core.DefaultConfig(), m)
		rows = append(rows, FeasibilityRow{
			Model:         m.Name,
			Layers:        len(mf.Layers),
			CacheMisfits:  mf.CacheMisfits,
			BufferMisfits: mf.BufferMisfits,
		})
	}
	return rows
}

// FormatFeasibility renders the report.
func FormatFeasibility(rows []FeasibilityRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Memory-system feasibility (16 kB kernel caches, 256 kB buffer)")
	fmt.Fprintln(&b, "model       layers  kernel-cache-misfits  buffer-misfits")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %6d  %20d  %14d\n", r.Model, r.Layers, r.CacheMisfits, r.BufferMisfits)
	}
	fmt.Fprintln(&b, "cache misfits stream weights from the buffer (FC layers);")
	fmt.Fprintln(&b, "buffer misfits tile activations through off-chip memory.")
	return b.String()
}
