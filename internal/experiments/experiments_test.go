package experiments

import (
	"strings"
	"testing"

	"albireo/internal/core"
)

func TestFig3ShapeAndAnchor(t *testing.T) {
	rows := Fig3(DefaultFig3Params())
	if len(rows) == 0 {
		t.Fatal("Fig3 should produce rows")
	}
	// Anchor: 2 mW at 20 wavelengths gives ~10 bits (Section II-C.1).
	var anchor *Fig3Row
	byPower := map[float64][]Fig3Row{}
	for i, r := range rows {
		byPower[r.LaserPower] = append(byPower[r.LaserPower], r)
		if r.LaserPower == 2e-3 && r.Wavelengths == 20 {
			anchor = &rows[i]
		}
	}
	if anchor == nil {
		t.Fatal("missing 2 mW / 20 wavelength point")
	}
	if anchor.Bits < 9 || anchor.Bits > 11 {
		t.Errorf("anchor precision = %.2f bits, want ~10", anchor.Bits)
	}
	// More laser power never hurts at fixed wavelength count, and the
	// gain shrinks (diminishing returns).
	p05, p1, p2, p4 := byPower[0.5e-3], byPower[1e-3], byPower[2e-3], byPower[4e-3]
	for i := range p05 {
		if !(p05[i].Bits <= p1[i].Bits+1e-9 && p1[i].Bits <= p2[i].Bits+1e-9 && p2[i].Bits <= p4[i].Bits+1e-9) {
			t.Fatalf("precision must be monotone in laser power at n=%d", p05[i].Wavelengths)
		}
	}
	gainLow := p1[9].Bits - p05[9].Bits
	gainHigh := p4[9].Bits - p2[9].Bits
	if gainHigh > gainLow {
		t.Errorf("doubling power should show diminishing returns: %+.3f then %+.3f bits", gainLow, gainHigh)
	}
}

func TestFig4aOrdering(t *testing.T) {
	k2s := []float64{0.02, 0.03, 0.05}
	rows := Fig4a(k2s, 2e-9, 41)
	if len(rows) != 3*41 {
		t.Fatal("row count")
	}
	// At a fixed off-resonance detuning, lower k^2 suppresses more.
	at := func(k2 float64) float64 {
		for _, r := range rows {
			if r.K2 == k2 && r.DetuneNM > 0.79 && r.DetuneNM < 0.81 {
				return r.DropDB
			}
		}
		t.Fatal("missing detune point")
		return 0
	}
	if !(at(0.02) < at(0.03) && at(0.03) < at(0.05)) {
		t.Error("off-resonance suppression should improve as k^2 falls")
	}
	if FormatFig4a(k2s) == "" {
		t.Error("format")
	}
}

func TestFig4bShape(t *testing.T) {
	rows := Fig4b([]float64{0.02, 0.03}, []float64{5e9, 40e9})
	if len(rows) != 4 {
		t.Fatal("row count")
	}
	get := func(k2, rate float64) Fig4bRow {
		for _, r := range rows {
			if r.K2 == k2 && r.SymbolRate == rate {
				return r
			}
		}
		t.Fatal("missing row")
		return Fig4bRow{}
	}
	// k2=0.02 rings are slower.
	if get(0.02, 5e9).RiseTimePS <= get(0.03, 5e9).RiseTimePS {
		t.Error("k2=0.02 should rise slower")
	}
	// Eyes close as the rate rises, k2=0.02 first.
	if get(0.02, 40e9).EyeOpening >= get(0.02, 5e9).EyeOpening {
		t.Error("eye must close at higher rates")
	}
	if get(0.02, 40e9).EyeOpening > get(0.03, 40e9).EyeOpening {
		t.Error("k2=0.02 eye should be worse at 40 GHz")
	}
	if FormatFig4b(rows) == "" {
		t.Error("format")
	}
}

func TestFig4cAnchors(t *testing.T) {
	rows := Fig4c([]float64{0.02, 0.03}, 40)
	get := func(k2 float64, n int) Fig4cRow {
		for _, r := range rows {
			if r.K2 == k2 && r.Wavelengths == n {
				return r
			}
		}
		t.Fatal("missing row")
		return Fig4cRow{}
	}
	// Section II-C.2 anchors.
	if b := get(0.03, 20).Bits; b < 5.5 || b > 7 {
		t.Errorf("k2=0.03 @ 20: %.2f bits, want ~6", b)
	}
	if d := get(0.03, 20).DiffBits; d < 6.5 || d > 8 {
		t.Errorf("k2=0.03 @ 20 differential: %.2f bits, want ~7", d)
	}
	if b := get(0.02, 8).Bits; b < 8 {
		t.Errorf("k2=0.02 @ 8: %.2f bits, want >= 8", b)
	}
	// Precision falls with wavelength count.
	if get(0.03, 40).Bits >= get(0.03, 10).Bits {
		t.Error("precision must fall as channels densify")
	}
	if FormatFig4c(rows) == "" {
		t.Error("format")
	}
}

func TestFig8Rows(t *testing.T) {
	rows := Fig8()
	if len(rows) != 16 { // 4 models x 4 designs
		t.Fatalf("Fig8 rows = %d, want 16", len(rows))
	}
	// For every model: PIXEL slowest, Albireo-27 fastest.
	byModel := map[string]map[string]Fig8Row{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]Fig8Row{}
		}
		byModel[r.Model][r.Design] = r
	}
	for model, designs := range byModel {
		if len(designs) != 4 {
			t.Fatalf("%s: expected 4 designs", model)
		}
		if designs["PIXEL"].Latency <= designs["DEAP-CNN"].Latency {
			t.Errorf("%s: PIXEL should be slower than DEAP-CNN", model)
		}
		if designs["DEAP-CNN"].Latency <= designs["Albireo-9"].Latency {
			t.Errorf("%s: DEAP-CNN should be slower than Albireo-9", model)
		}
		if designs["Albireo-9"].Latency <= designs["Albireo-27"].Latency {
			t.Errorf("%s: Albireo-27 should be fastest", model)
		}
	}
	out := FormatFig8(rows)
	if !strings.Contains(out, "VGG16") || !strings.Contains(out, "Albireo-27") {
		t.Error("formatted Fig8 should mention designs and models")
	}
}

func TestFig9Fractions(t *testing.T) {
	rows := Fig9(core.DefaultConfig())
	var total float64
	frac := map[string]float64{}
	for _, r := range rows {
		total += r.Fraction
		frac[r.Component] = r.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %.4f, want 1", total)
	}
	if frac["AWG"] < 0.68 || frac["AWG"] > 0.76 {
		t.Errorf("AWG fraction %.2f, want ~0.72", frac["AWG"])
	}
	if frac["StarCoupler"] < 0.14 || frac["StarCoupler"] > 0.20 {
		t.Errorf("star coupler fraction %.2f, want ~0.17", frac["StarCoupler"])
	}
	if FormatFig9(rows) == "" {
		t.Error("format")
	}
}

func TestTableFormats(t *testing.T) {
	if !strings.Contains(FormatTableI(), "MZM") {
		t.Error("Table I should list devices")
	}
	if !strings.Contains(FormatTableII(), "RIN") {
		t.Error("Table II should list optical parameters")
	}
	t3 := FormatTableIII(core.DefaultConfig())
	if !strings.Contains(t3, "Total") || !strings.Contains(t3, "DAC") {
		t.Error("Table III should include totals")
	}
	rows := TableIV()
	if len(rows) != 12 { // 2 models x (3 reported + 3 Albireo)
		t.Fatalf("Table IV rows = %d, want 12", len(rows))
	}
	var reported int
	for _, r := range rows {
		if r.Reported {
			reported++
		}
	}
	if reported != 6 {
		t.Errorf("reported rows = %d, want 6", reported)
	}
	if !strings.Contains(FormatTableIV(rows), "[reported]") {
		t.Error("Table IV should tag reported rows")
	}
}

func TestFig3Format(t *testing.T) {
	out := FormatFig3(Fig3(Fig3Params{LaserPowers: []float64{1e-3}, MaxWavelengths: 8, PathLossDB: 5}))
	if !strings.Contains(out, "dominant") {
		t.Error("Fig3 format")
	}
}
