package experiments

import (
	"strings"
	"testing"
)

func TestGEMMQuantSweepShape(t *testing.T) {
	t.Parallel()
	rows := GEMMQuantSweep([]int{2, 4, 6, 8}, 64)
	if len(rows) != 4 {
		t.Fatal("row count")
	}
	by := map[int]GEMMQuantRow{}
	for _, r := range rows {
		by[r.Bits] = r
	}
	// int8 serving is the documented budget: near-perfect argmax
	// agreement and small relative RMS against the float head.
	if by[8].AgreementPct < 95 {
		t.Errorf("int8 agreement = %.1f%%, want >= 95%%", by[8].AgreementPct)
	}
	if by[8].RelRMS > 0.05 {
		t.Errorf("int8 rel-RMS = %.4f, want <= 0.05", by[8].RelRMS)
	}
	// 2-bit must be visibly broken relative to int8.
	if by[2].RelRMS < 5*by[8].RelRMS {
		t.Errorf("2-bit rel-RMS %.4f suspiciously close to int8 %.4f", by[2].RelRMS, by[8].RelRMS)
	}
	if by[4].RelRMS < by[6].RelRMS {
		t.Error("rel-RMS should not rise with more bits (4 -> 6)")
	}
	if !strings.Contains(FormatGEMMQuant(rows), "rel-RMS") {
		t.Error("format")
	}
}
