package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	rows := TableI()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header plus one record per row.
	if len(records) != len(rows)+1 {
		t.Fatalf("records = %d, want %d", len(records), len(rows)+1)
	}
	if records[0][0] != "Device" || records[0][1] != "Conservative" {
		t.Errorf("header = %v", records[0])
	}
	// The MRR conservative power appears in the first data row.
	if records[1][0] != "MRR" || !strings.HasPrefix(records[1][1], "0.0031") {
		t.Errorf("first row = %v", records[1])
	}
}

func TestWriteCSVMixedTypes(t *testing.T) {
	type row struct {
		Name  string
		Count int
		Ratio float64
		OK    bool
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []row{{"x", 3, 1.5, true}}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "x,3,1.5,true") {
		t.Errorf("csv = %q", got)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, 42); err == nil {
		t.Error("non-slice should error")
	}
	if err := WriteCSV(&buf, []int{1, 2}); err == nil {
		t.Error("non-struct elements should error")
	}
	if err := WriteCSV(&buf, []TableIRow{}); err != nil {
		t.Error("empty slice is fine (no output)")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, TableI()); err != nil {
		t.Fatal(err)
	}
	var back []TableIRow
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 6 || back[0].Device != "MRR" {
		t.Error("JSON round trip mismatch")
	}
}

func TestCollectDataset(t *testing.T) {
	ds := CollectDataset()
	if len(ds.Fig3) == 0 || len(ds.Fig4c) == 0 || len(ds.Fig8) != 16 ||
		len(ds.Fig9) == 0 || len(ds.TableI) != 6 || len(ds.TableIV) != 12 ||
		len(ds.Dataflow) != 8 || len(ds.Energy) != 4 {
		t.Error("dataset should contain every experiment's rows")
	}
	// The whole dataset serializes.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Error("dataset JSON implausibly small")
	}
}
