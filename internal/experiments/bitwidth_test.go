package experiments

import (
	"strings"
	"testing"
)

func TestBitwidthSweepShape(t *testing.T) {
	rows := BitwidthSweep([]int{3, 4, 6, 8}, 30)
	if len(rows) != 4 {
		t.Fatal("row count")
	}
	// 8-bit deployment keeps high accuracy; 3-bit collapses toward
	// chance - the end-to-end justification of the paper's 8-bit
	// converters and the >= 7-bit crosstalk budget.
	by := map[int]float64{}
	for _, r := range rows {
		by[r.Bits] = r.AccuracyPct
	}
	if by[8] < 90 {
		t.Errorf("8-bit accuracy = %.1f%%, want >= 90%%", by[8])
	}
	if by[3] > by[8]-10 {
		t.Errorf("3-bit accuracy %.1f%% should fall well below 8-bit %.1f%%", by[3], by[8])
	}
	if by[6] < by[3] {
		t.Error("accuracy should not fall with more bits (3 -> 6)")
	}
	if !strings.Contains(FormatBitwidth(rows), "bits") {
		t.Error("format")
	}
}
