package experiments

import (
	"fmt"
	"strings"

	"albireo/internal/baseline"
	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/perf"
	"albireo/internal/units"
)

// Fig8Row is one accelerator/network cell of Figure 8: the photonic
// comparison at the 60 W budget with conservative devices.
type Fig8Row struct {
	Model   string
	Design  string
	Latency float64
	Energy  float64
	EDP     float64
	Power   float64
}

// Fig8 evaluates all four CNNs on PIXEL, DEAP-CNN, Albireo-9, and
// Albireo-27.
func Fig8() []Fig8Row {
	deap := baseline.NewDEAPCNN()
	pixel := baseline.NewPIXEL()
	var rows []Fig8Row
	for _, m := range nn.Benchmarks() {
		px := pixel.Evaluate(m)
		rows = append(rows, Fig8Row{m.Name, "PIXEL", px.Latency, px.Energy, px.EDP, px.Power})
		dp := deap.Evaluate(m)
		rows = append(rows, Fig8Row{m.Name, "DEAP-CNN", dp.Latency, dp.Energy, dp.EDP, dp.Power})
		a9 := perf.Evaluate(core.DefaultConfig(), m)
		rows = append(rows, Fig8Row{m.Name, "Albireo-9", a9.Latency, a9.Energy, a9.EDP, a9.Power})
		a27 := perf.Evaluate(core.Albireo27(), m)
		rows = append(rows, Fig8Row{m.Name, "Albireo-27", a27.Latency, a27.Energy, a27.EDP, a27.Power})
	}
	return rows
}

// FormatFig8 renders the comparison.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: photonic accelerator comparison (conservative devices, 60 W budget)")
	fmt.Fprintln(&b, "model       design       latency(ms)  energy(mJ)  EDP(mJ*ms)  power(W)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s  %-11s  %11.4f  %10.3f  %10.4f  %8.1f\n",
			r.Model, r.Design, r.Latency*units.Kilo, r.Energy*units.Kilo, r.EDP*units.Mega, r.Power)
	}
	return b.String()
}

// Fig9Row is one component slice of the Figure 9 area pie.
type Fig9Row struct {
	Component string
	AreaMM2   float64
	Fraction  float64
}

// Fig9 computes the chip area breakdown for a configuration.
func Fig9(cfg core.Config) []Fig9Row {
	a := perf.NewCensus(cfg).Area()
	total := a.Total()
	mk := func(name string, m2 float64) Fig9Row {
		return Fig9Row{name, m2 * units.Mega, m2 / total}
	}
	return []Fig9Row{
		mk("AWG", a.AWG),
		mk("StarCoupler", a.StarCoupler),
		mk("Laser", a.Laser),
		mk("MZM", a.MZM),
		mk("MRR", a.MRR),
		mk("Photodiode", a.Photodiode),
		mk("SRAM", a.SRAM),
		mk("YBranch", a.YBranch),
	}
}

// FormatFig9 renders the breakdown.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 9: Albireo chip area breakdown")
	fmt.Fprintln(&b, "component    area(mm^2)  fraction")
	var total float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s  %10.3f  %7.1f%%\n", r.Component, r.AreaMM2, r.Fraction*100)
		total += r.AreaMM2
	}
	fmt.Fprintf(&b, "%-11s  %10.3f\n", "TOTAL", total)
	return b.String()
}

// TableIRow is one device row of Table I.
type TableIRow struct {
	Device                             string
	Conservative, Moderate, Aggressive float64 // watts
}

// TableI returns the device power estimates.
func TableI() []TableIRow {
	c := device.Powers(device.Conservative)
	m := device.Powers(device.Moderate)
	a := device.Powers(device.Aggressive)
	return []TableIRow{
		{"MRR", c.MRR, m.MRR, a.MRR},
		{"MZM", c.MZM, m.MZM, a.MZM},
		{"Laser", c.Laser, m.Laser, a.Laser},
		{"TIA", c.TIA, m.TIA, a.TIA},
		{"ADC", c.ADC, m.ADC, a.ADC},
		{"DAC", c.DAC, m.DAC, a.DAC},
	}
}

// FormatTableI renders Table I.
func FormatTableI() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table I: device power estimates (mW)")
	fmt.Fprintln(&b, "device  conservative  moderate  aggressive")
	for _, r := range TableI() {
		fmt.Fprintf(&b, "%-6s  %12.2f  %8.3f  %10.3f\n",
			r.Device, r.Conservative*units.Kilo, r.Moderate*units.Kilo, r.Aggressive*units.Kilo)
	}
	return b.String()
}

// FormatTableII renders the optical device parameters.
func FormatTableII() string {
	o := device.Optics()
	var b strings.Builder
	fmt.Fprintln(&b, "Table II: optical device parameters")
	fmt.Fprintf(&b, "waveguide neff/ng        %.2f / %.2f @ 1550 nm\n", o.NEff, o.NGroup)
	fmt.Fprintf(&b, "waveguide loss           %.1f dB/cm straight, %.1f dB/cm bent\n", o.StraightLossDB/100, o.BentLossDB/100)
	fmt.Fprintf(&b, "Y-branch loss            %.1f dB\n", o.YBranchLossDB)
	fmt.Fprintf(&b, "MRR radius/k^2/FSR       %.0f um / %.2f / %.1f nm\n", o.RingRadius*units.Mega, o.RingK2, o.RingFSR*units.Giga)
	fmt.Fprintf(&b, "MZM loss/area            %.1f dB / %.0fx%.0f um^2\n", o.MZMLossDB, 300.0, 50.0)
	fmt.Fprintf(&b, "star coupler loss        %.1f dB\n", o.StarLossDB)
	fmt.Fprintf(&b, "AWG channels/loss/xtalk  %d / %.1f dB / %.0f dB\n", o.AWGChannels, o.AWGLossDB, o.AWGCrosstalkDB)
	fmt.Fprintf(&b, "laser RIN                %.0f dBc/Hz\n", o.LaserRINdBcHz)
	fmt.Fprintf(&b, "PD responsivity/dark     %.1f A/W / %.0f pA\n", o.PDResponsivity, o.PDDarkCurrent*units.Tera)
	return b.String()
}

// TableIIIColumn is one estimate column of Table III.
type TableIIIColumn struct {
	Estimate device.Estimate
	Power    perf.PowerBreakdown
}

// TableIII computes the chip power breakdown for every estimate.
func TableIII(cfg core.Config) []TableIIIColumn {
	census := perf.NewCensus(cfg)
	var out []TableIIIColumn
	for _, e := range device.Estimates {
		out = append(out, TableIIIColumn{e, census.Power(e)})
	}
	return out
}

// FormatTableIII renders the breakdown with per-row portions.
func FormatTableIII(cfg core.Config) string {
	cols := TableIII(cfg)
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: device power breakdown (Ng=%d)\n", cfg.Ng)
	fmt.Fprintln(&b, "row      Albireo-C            Albireo-M            Albireo-A")
	row := func(name string, f func(perf.PowerBreakdown) float64) {
		fmt.Fprintf(&b, "%-6s", name)
		for _, c := range cols {
			v := f(c.Power)
			fmt.Fprintf(&b, "  %7.2f W (%5.1f%%)", v, 100*v/c.Power.Total())
		}
		fmt.Fprintln(&b)
	}
	row("MRR", func(p perf.PowerBreakdown) float64 { return p.MRR })
	row("MZI", func(p perf.PowerBreakdown) float64 { return p.MZM })
	row("Laser", func(p perf.PowerBreakdown) float64 { return p.Laser })
	row("TIA", func(p perf.PowerBreakdown) float64 { return p.TIA })
	row("DAC", func(p perf.PowerBreakdown) float64 { return p.DAC })
	row("ADC", func(p perf.PowerBreakdown) float64 { return p.ADC })
	row("Cache", func(p perf.PowerBreakdown) float64 { return p.Cache })
	row("Total", func(p perf.PowerBreakdown) float64 { return p.Total() })
	return b.String()
}

// TableIVRow is one column of Table IV: a design evaluated on a model.
type TableIVRow struct {
	Design            string
	Model             string
	Latency           float64
	Energy            float64
	EDP               float64
	GOPSPerMM2        float64
	GOPSPerMM2Active  float64
	GOPSPerWattPerMM2 float64
	Reported          bool // true for published electronic rows
}

// TableIV builds the electronic comparison for AlexNet and VGG16:
// reported Eyeriss/ENVISION/UNPU rows plus our computed Albireo
// C/M/A columns.
func TableIV() []TableIVRow {
	var rows []TableIVRow
	for _, modelName := range []string{"AlexNet", "VGG16"} {
		for _, e := range baseline.ReportedFor(modelName) {
			rows = append(rows, TableIVRow{
				Design:            e.Accelerator + " (" + e.Technology + ")",
				Model:             modelName,
				Latency:           e.Latency,
				Energy:            e.Energy,
				EDP:               e.EDP,
				GOPSPerMM2:        e.GOPSPerMM2,
				GOPSPerWattPerMM2: e.GOPSPerWattPerMM2,
				Reported:          true,
			})
		}
		m, _ := nn.ByName(modelName)
		for _, est := range device.Estimates {
			cfg := core.DefaultConfig()
			cfg.Estimate = est
			r := perf.Evaluate(cfg, m)
			rows = append(rows, TableIVRow{
				Design:            "Albireo-" + est.String(),
				Model:             modelName,
				Latency:           r.Latency,
				Energy:            r.Energy,
				EDP:               r.EDP,
				GOPSPerMM2:        r.GOPSPerMM2(),
				GOPSPerMM2Active:  r.GOPSPerMM2Active(),
				GOPSPerWattPerMM2: r.GOPSPerWattPerMM2(),
			})
		}
	}
	return rows
}

// FormatTableIV renders the comparison. Albireo rows carry the
// active-area normalization (Table IV footnote c); reported electronic
// rows do not publish it.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table IV: CNN inference comparison with digital accelerators")
	fmt.Fprintln(&b, "model    design           latency(ms)  energy(mJ)    EDP(mJ*ms)  GOPS/mm2  GOPS/W/mm2")
	for _, r := range rows {
		src := ""
		if r.Reported {
			src = " [reported]"
		}
		active := ""
		if r.GOPSPerMM2Active > 0 {
			active = fmt.Sprintf("  (active: %.0f)", r.GOPSPerMM2Active)
		}
		fmt.Fprintf(&b, "%-7s  %-15s  %11.3f  %10.3f  %12.4f  %8.1f  %10.2f%s%s\n",
			r.Model, r.Design, r.Latency*units.Kilo, r.Energy*units.Kilo, r.EDP*units.Mega,
			r.GOPSPerMM2, r.GOPSPerWattPerMM2, src, active)
	}
	return b.String()
}

// FormatLayers renders the Section IV-A per-layer analysis for one
// network on one configuration.
func FormatLayers(cfg core.Config, m nn.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-layer analysis: %s on Albireo-%s (Ng=%d)\n", m.Name, cfg.Estimate, cfg.Ng)
	fmt.Fprintln(&b, "layer         kind     cycles       latency(us)  energy(uJ)")
	for _, lr := range perf.EvaluateLayers(cfg, m) {
		fmt.Fprintf(&b, "%-12s  %-7s  %-11d  %11.2f  %10.2f\n",
			lr.Layer.Name, lr.Layer.Kind, lr.Cycles, lr.Latency*units.Mega, lr.Energy*units.Mega)
	}
	return b.String()
}
