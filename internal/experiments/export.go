package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strconv"

	"albireo/internal/core"
	"albireo/internal/units"
)

// Export writers: every experiment's row slice can be serialized to
// CSV (for plotting scripts) or JSON (for downstream tooling) via
// reflection over the exported struct fields. The albireo-figures CLI
// exposes these with -format csv|json.

// WriteCSV writes any slice of flat structs as CSV with a header row
// derived from the field names.
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteCSV wants a slice, got %T", rows)
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if v.Len() == 0 {
		return nil
	}
	et := v.Index(0).Type()
	if et.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteCSV wants structs, got %s", et)
	}
	header := make([]string, et.NumField())
	for i := 0; i < et.NumField(); i++ {
		header[i] = et.Field(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < v.Len(); r++ {
		rec := make([]string, et.NumField())
		for i := 0; i < et.NumField(); i++ {
			rec[i] = formatField(v.Index(r).Field(i))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatField stringifies one struct field for CSV.
func formatField(f reflect.Value) string {
	switch f.Kind() {
	case reflect.Float64, reflect.Float32:
		return strconv.FormatFloat(f.Float(), 'g', 10, 64)
	case reflect.Int, reflect.Int64, reflect.Int32:
		return strconv.FormatInt(f.Int(), 10)
	case reflect.Bool:
		return strconv.FormatBool(f.Bool())
	case reflect.String:
		return f.String()
	default:
		return fmt.Sprint(f.Interface())
	}
}

// WriteJSON writes any value as indented JSON.
func WriteJSON(w io.Writer, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// Dataset bundles every experiment's structured rows, for a one-shot
// machine-readable dump of the full reproduction.
type Dataset struct {
	Fig3     []Fig3Row
	Fig4b    []Fig4bRow
	Fig4c    []Fig4cRow
	Fig8     []Fig8Row
	Fig9     []Fig9Row
	TableI   []TableIRow
	TableIV  []TableIVRow
	Dataflow []DataflowRow
	Energy   []EnergyRow
}

// CollectDataset regenerates everything into one structure.
func CollectDataset() Dataset {
	return Dataset{
		Fig3:     Fig3(DefaultFig3Params()),
		Fig4b:    Fig4b([]float64{0.02, 0.03, 0.05}, []float64{5 * units.Giga, 10 * units.Giga, 20 * units.Giga, 40 * units.Giga}),
		Fig4c:    Fig4c([]float64{0.02, 0.03, 0.05}, 40),
		Fig8:     Fig8(),
		Fig9:     fig9Default(),
		TableI:   TableI(),
		TableIV:  TableIV(),
		Dataflow: DataflowComparison(),
		Energy:   EnergyRefinement(),
	}
}

func fig9Default() []Fig9Row {
	return Fig9(core.DefaultConfig())
}
