// Package experiments regenerates every table and figure of the
// paper's evaluation (Section IV) from the simulator: Figure 3 (noise
// precision), Figure 4 (MRR design space), Figure 8 (photonic
// accelerator comparison), Figure 9 (area breakdown), and Tables I-IV.
// Each experiment returns structured rows plus a formatted text table,
// so the same code backs the albireo-figures CLI, the benchmark
// harness, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"albireo/internal/circuit"
	"albireo/internal/noise"
	"albireo/internal/photonics"
	"albireo/internal/units"
)

// Fig3Row is one curve point of Figure 3: noise-limited precision
// versus wavelength count for a given laser power.
type Fig3Row struct {
	LaserPower  float64 // watts
	Wavelengths int
	Bits        float64
	Dominant    string
}

// Fig3Params configures the Figure 3 sweep.
type Fig3Params struct {
	// LaserPowers to sweep (paper shows increasing powers up to the
	// RIN plateau).
	LaserPowers []float64
	// MaxWavelengths bounds the x axis.
	MaxWavelengths int
	// PathLossDB is the optical loss from laser to photodiode for the
	// dot-product path (see DESIGN.md; ~5 dB reproduces the paper's
	// 10-bit anchor at 2 mW / 20 wavelengths).
	PathLossDB float64
}

// DefaultFig3Params returns the Section II-C sweep.
func DefaultFig3Params() Fig3Params {
	return Fig3Params{
		LaserPowers:    []float64{0.5 * units.Milli, units.Milli, 2 * units.Milli, 4 * units.Milli},
		MaxWavelengths: 64,
		PathLossDB:     5,
	}
}

// Fig3 runs the noise-only precision analysis (crosstalk excluded),
// reproducing the shape of Figure 3: precision grows with laser power
// with diminishing returns once RIN dominates.
func Fig3(p Fig3Params) []Fig3Row {
	np := noise.DefaultParams()
	pd := photonics.NewPhotodiode()
	var rows []Fig3Row
	for _, lp := range p.LaserPowers {
		iPer := pd.Responsivity * lp * units.LossDBToTransmission(p.PathLossDB)
		for n := 2; n <= p.MaxWavelengths; n += 2 {
			rows = append(rows, Fig3Row{
				LaserPower:  lp,
				Wavelengths: n,
				Bits:        np.PrecisionBits(iPer, n),
				Dominant:    np.DominantSource(iPer, n),
			})
		}
	}
	return rows
}

// FormatFig3 renders the Figure 3 series as a text table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 3: noise-limited precision vs wavelength count")
	fmt.Fprintln(&b, "laser(mW)  #lambda  bits   dominant-noise")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.1f  %7d  %5.2f  %s\n", r.LaserPower*units.Kilo, r.Wavelengths, r.Bits, r.Dominant)
	}
	return b.String()
}

// Fig4aRow is one spectrum point of Figure 4a: the MRR drop-port
// response versus wavelength detuning, per k^2.
type Fig4aRow struct {
	K2       float64
	DetuneNM float64
	DropDB   float64
}

// Fig4a sweeps the drop-port spectrum for the paper's k^2 values.
func Fig4a(k2s []float64, span float64, points int) []Fig4aRow {
	var rows []Fig4aRow
	center := 1550 * units.Nano
	for _, k2 := range k2s {
		ring := photonics.NewMRRWithK2(center, k2)
		for i := 0; i < points; i++ {
			det := -span/2 + span*float64(i)/float64(points-1)
			tr := ring.DropTransfer(center + det)
			rows = append(rows, Fig4aRow{
				K2:       k2,
				DetuneNM: det / units.Nano,
				DropDB:   units.LinearToDB(tr),
			})
		}
	}
	return rows
}

// FormatFig4a renders the spectra with FWHM annotations.
func FormatFig4a(k2s []float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4a: MRR drop-port spectrum vs k^2 (1550 nm ring)")
	fmt.Fprintln(&b, "   k^2    FWHM(nm)  finesse  peak-drop")
	for _, k2 := range k2s {
		ring := photonics.NewMRRWithK2(1550*units.Nano, k2)
		fmt.Fprintf(&b, "%6.3f  %9.4f  %7.1f  %9.4f\n",
			k2, ring.FWHM()/units.Nano, ring.Finesse(),
			ring.DropTransfer(ring.ResonantWavelength))
	}
	return b.String()
}

// Fig4bRow is one temporal-response summary of Figure 4b.
type Fig4bRow struct {
	K2          float64
	SymbolRate  float64
	RiseTimePS  float64 // 10-90% rise time
	EyeOpening  float64
	SettledFrac float64
}

// Fig4b characterizes the ring temporal response across k^2 values and
// symbol rates, reproducing the Figure 4b trade-off: the k^2 = 0.02
// ring is the slowest and closes its eye first as the rate rises.
func Fig4b(k2s []float64, rates []float64) []Fig4bRow {
	var rows []Fig4bRow
	for _, k2 := range k2s {
		for _, rate := range rates {
			tr := circuit.NewTemporalResponse(k2, rate)
			// 10-90% rise time of a first-order system is ln(9)*tau.
			rise := math.Log(9) * tr.Ring.PhotonLifetime()
			rows = append(rows, Fig4bRow{
				K2:          k2,
				SymbolRate:  rate,
				RiseTimePS:  rise * units.Tera,
				EyeOpening:  tr.EyeOpening(),
				SettledFrac: tr.SettledFraction(),
			})
		}
	}
	return rows
}

// FormatFig4b renders the temporal summary.
func FormatFig4b(rows []Fig4bRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4b: MRR temporal response vs k^2")
	fmt.Fprintln(&b, "   k^2   rate(GHz)  rise(ps)  eye    settled")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.3f  %9.0f  %8.1f  %5.3f  %7.4f\n",
			r.K2, r.SymbolRate/units.Giga, r.RiseTimePS, r.EyeOpening, r.SettledFrac)
	}
	return b.String()
}

// Fig4cRow is one point of Figure 4c: crosstalk-limited precision
// versus wavelength count per k^2.
type Fig4cRow struct {
	K2           float64
	Wavelengths  int
	Bits         float64
	DiffBits     float64 // with differential (+/-) accumulation
	CrosstalkPct float64
}

// Fig4c sweeps the MRR accumulator precision, reproducing the paper's
// anchors (k^2 = 0.03 supports ~6 bits at 20 wavelengths, ~7 with
// differential accumulation; k^2 = 0.02 holds 8 bits at low counts).
func Fig4c(k2s []float64, maxWavelengths int) []Fig4cRow {
	var rows []Fig4cRow
	for _, k2 := range k2s {
		for n := 4; n <= maxWavelengths; n += 2 {
			xa := circuit.NewCrosstalkAnalysis(k2, n)
			rows = append(rows, Fig4cRow{
				K2:           k2,
				Wavelengths:  n,
				Bits:         xa.PrecisionBits(),
				DiffBits:     xa.DifferentialPrecisionBits(),
				CrosstalkPct: xa.WorstChannelCrosstalk() * 100,
			})
		}
	}
	return rows
}

// FormatFig4c renders the crosstalk precision series.
func FormatFig4c(rows []Fig4cRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4c: crosstalk-limited precision vs wavelength count")
	fmt.Fprintln(&b, "   k^2  #lambda   bits  bits(diff)  xtalk(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.3f  %7d  %5.2f  %10.2f  %8.3f\n",
			r.K2, r.Wavelengths, r.Bits, r.DiffBits, r.CrosstalkPct)
	}
	return b.String()
}
