package experiments

import (
	"strings"
	"testing"

	"albireo/internal/core"
	"albireo/internal/nn"
)

func coreDefault() core.Config { return core.DefaultConfig() }

func mustVGG() nn.Model {
	m, _ := nn.ByName("VGG16")
	return m
}

func TestDataflowComparison(t *testing.T) {
	rows := DataflowComparison()
	if len(rows) != 8 { // 4 models x 2 dataflows
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Pair up and verify the depth-first advantage on traffic.
	for i := 0; i < len(rows); i += 2 {
		df, ws := rows[i], rows[i+1]
		if df.Model != ws.Model {
			t.Fatal("rows should pair by model")
		}
		if df.Cycles != ws.Cycles {
			t.Errorf("%s: dataflow must not change cycles", df.Model)
		}
		if ws.EnergyUJ <= df.EnergyUJ {
			t.Errorf("%s: weight-stationary should cost more movement energy", df.Model)
		}
	}
	if !strings.Contains(FormatDataflow(rows), "depth-first") {
		t.Error("format")
	}
}

func TestEnergyRefinement(t *testing.T) {
	rows := EnergyRefinement()
	if len(rows) != 4 {
		t.Fatal("one row per benchmark")
	}
	for _, r := range rows {
		if r.GatedMJ > r.FlatMJ*1.001 {
			t.Errorf("%s: gating cannot exceed flat", r.Model)
		}
		if r.SRAMMJ <= 0 {
			t.Errorf("%s: SRAM energy must be positive", r.Model)
		}
	}
	if !strings.Contains(FormatEnergy(rows), "savings") {
		t.Error("format")
	}
}

func TestFormatLink(t *testing.T) {
	out := FormatLink()
	if !strings.Contains(out, "Ng=9") || !strings.Contains(out, "Ng=27") {
		t.Error("link report should cover both designs")
	}
	if !strings.Contains(out, "channel plan") {
		t.Error("link report should include the channel plan")
	}
}

func TestFeasibilityReport(t *testing.T) {
	rows := FeasibilityReport()
	if len(rows) != 4 {
		t.Fatal("one row per benchmark")
	}
	byName := map[string]FeasibilityRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	// VGG16's fc1 kernel (25088 B) cannot fit the 16 kB cache; fc2/fc3
	// (4096 B) can.
	if byName["VGG16"].CacheMisfits != 1 {
		t.Errorf("VGG16 cache misfits = %d, want 1 (fc1)", byName["VGG16"].CacheMisfits)
	}
	// Only VGG16 (224x224x64 = 3.2 MB) and MobileNet (112x112x32 =
	// 401 kB) have early activations beyond the 256 kB buffer; AlexNet
	// and ResNet18 downsample aggressively enough to fit throughout.
	if byName["VGG16"].BufferMisfits == 0 || byName["MobileNet"].BufferMisfits == 0 {
		t.Error("VGG16 and MobileNet should have buffer misfits")
	}
	if byName["AlexNet"].BufferMisfits != 0 || byName["ResNet18"].BufferMisfits != 0 {
		t.Error("AlexNet and ResNet18 activations fit the 256 kB buffer everywhere")
	}
	if !strings.Contains(FormatFeasibility(rows), "kernel-cache-misfits") {
		t.Error("format")
	}
}

func TestFormatLayers(t *testing.T) {
	out := FormatLayers(coreDefault(), mustVGG())
	if !strings.Contains(out, "conv1_1") || !strings.Contains(out, "fc3") {
		t.Error("per-layer table should list every compute layer")
	}
}
