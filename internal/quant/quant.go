// Package quant implements the integer quantization used at Albireo's
// electrical/optical boundary. The paper's DACs and ADCs are 8-bit
// (Section IV-A), and "reduced model precision like 8-bit integer
// quantization is common among energy-efficient architectures"
// (Section II-C.2). Activations are unsigned (post-ReLU, encoded as
// optical power), weights are signed (sign handled by the MRR
// switching fabric).
package quant

import "math"

// Quantizer maps real values to a b-bit grid over a known range.
type Quantizer struct {
	// Bits is the integer precision.
	Bits int
	// Signed selects a symmetric signed range [-Scale, +Scale] versus
	// an unsigned range [0, Scale].
	Signed bool
	// Scale is the full-scale magnitude.
	Scale float64
}

// NewActivation returns the unsigned activation quantizer: b bits over
// [0, scale].
func NewActivation(bits int, scale float64) Quantizer {
	return Quantizer{Bits: bits, Signed: false, Scale: scale}
}

// NewWeight returns the signed weight quantizer: b bits over
// [-scale, +scale], symmetric around zero.
func NewWeight(bits int, scale float64) Quantizer {
	return Quantizer{Bits: bits, Signed: true, Scale: scale}
}

// Steps returns the number of positive quantization steps: 2^Bits - 1
// for unsigned, 2^(Bits-1) - 1 for signed.
func (q Quantizer) Steps() int {
	if q.Signed {
		return 1<<uint(q.Bits-1) - 1
	}
	return 1<<uint(q.Bits) - 1
}

// Quantize snaps x onto the grid, clipping to the representable range,
// and returns the dequantized real value.
func (q Quantizer) Quantize(x float64) float64 {
	if q.Scale <= 0 {
		return 0
	}
	steps := float64(q.Steps())
	n := x / q.Scale * steps
	lo := 0.0
	if q.Signed {
		lo = -steps
	}
	n = math.Round(math.Min(math.Max(n, lo), steps))
	return n / steps * q.Scale
}

// Code returns the integer code for x (clipped).
func (q Quantizer) Code(x float64) int {
	if q.Scale <= 0 {
		return 0
	}
	steps := float64(q.Steps())
	n := x / q.Scale * steps
	lo := 0.0
	if q.Signed {
		lo = -steps
	}
	return int(math.Round(math.Min(math.Max(n, lo), steps)))
}

// Dequantize converts an integer code back to a real value.
func (q Quantizer) Dequantize(code int) float64 {
	return float64(code) / float64(q.Steps()) * q.Scale
}

// LSB returns the quantization step size.
func (q Quantizer) LSB() float64 {
	return q.Scale / float64(q.Steps())
}

// QuantizeSlice quantizes every element of xs in place and returns xs.
func (q Quantizer) QuantizeSlice(xs []float64) []float64 {
	for i, x := range xs {
		xs[i] = q.Quantize(x)
	}
	return xs
}
