package quant

import (
	"math"
	"testing"
	"testing/quick"
)

// TestAffineRoundTripEveryBitwidth sweeps every supported bitwidth and
// checks the round-trip properties the integer inference path relies
// on: Quantize is idempotent (bitwise - a snapped value snaps to
// itself), every code survives Dequantize then Code, and the zero
// point represents 0.0 exactly.
func TestAffineRoundTripEveryBitwidth(t *testing.T) {
	t.Parallel()
	data := []float64{-1.3, -0.4, 0, 0.25, 0.9, 2.1}
	for bits := 2; bits <= 10; bits++ {
		a := CalibrateAffine(data, bits)
		if a.Scale <= 0 {
			t.Fatalf("bits=%d: calibration degenerate on non-constant data", bits)
		}
		if got := a.Dequantize(a.Code(0)); got != 0 {
			t.Fatalf("bits=%d: zero point not exact: 0.0 quantizes to %v", bits, got)
		}
		// Every code is a fixed point of Code(Dequantize(.)).
		for code := int64(0); code <= a.MaxCode(); code++ {
			if back := a.Code(a.Dequantize(code)); back != code {
				t.Fatalf("bits=%d: code %d round-trips to %d", bits, code, back)
			}
		}
		// Quantize idempotence, bitwise, over the full grid range and
		// beyond (clipping must also be idempotent).
		f := func(x float64) bool {
			x = math.Mod(x, 4)
			y := a.Quantize(x)
			return math.Float64bits(a.Quantize(y)) == math.Float64bits(y)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("bits=%d: Quantize not idempotent: %v", bits, err)
		}
	}
}

// TestQuantizerRoundTripEveryBitwidth does the same for the symmetric
// signed/unsigned Quantizer the weights and the analog input path use.
func TestQuantizerRoundTripEveryBitwidth(t *testing.T) {
	t.Parallel()
	for bits := 2; bits <= 10; bits++ {
		for _, signed := range []bool{false, true} {
			var q Quantizer
			if signed {
				q = NewWeight(bits, 1.5)
			} else {
				q = NewActivation(bits, 1.5)
			}
			lo := 0
			if signed {
				lo = -q.Steps()
			}
			for code := lo; code <= q.Steps(); code++ {
				if back := q.Code(q.Dequantize(code)); back != code {
					t.Fatalf("bits=%d signed=%v: code %d round-trips to %d", bits, signed, code, back)
				}
			}
			f := func(x float64) bool {
				x = math.Mod(x, 4)
				y := q.Quantize(x)
				return math.Float64bits(q.Quantize(y)) == math.Float64bits(y)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatalf("bits=%d signed=%v: Quantize not idempotent: %v", bits, signed, err)
			}
		}
	}
}

// TestCalibrateAffineDegenerate: constant tensors produce the
// all-zero-point grid, and Code/Dequantize stay total on it.
func TestCalibrateAffineDegenerate(t *testing.T) {
	t.Parallel()
	a := CalibrateAffine([]float64{0, 0, 0}, 8)
	if a.Scale != 0 || a.Zero != 0 {
		t.Fatalf("degenerate calibration = %+v, want zero grid", a)
	}
	if a.Code(3.7) != 0 || a.Dequantize(0) != 0 {
		t.Fatal("degenerate grid must map everything to the zero point")
	}
}

// TestCalibrateAffineRangeIncludesZero: a strictly positive tensor
// still gets code 0 as its zero point, so padding quantizes exactly.
func TestCalibrateAffineRangeIncludesZero(t *testing.T) {
	t.Parallel()
	a := CalibrateAffine([]float64{0.5, 1.0, 2.0}, 8)
	if a.Zero != 0 {
		t.Fatalf("positive-tensor zero point = %d, want 0", a.Zero)
	}
	if got := a.Dequantize(a.Code(0)); got != 0 {
		t.Fatalf("0.0 quantizes to %v on a positive tensor", got)
	}
}
