package quant

import "math"

// Affine is the asymmetric per-tensor quantizer of the end-to-end
// integer inference path: real x is approximated by
// Scale * (code - Zero) with codes in [0, 2^Bits - 1]. The zero point
// keeps 0.0 exactly representable, which the integer path relies on
// (padding and ReLU outputs must quantize without bias). Weights use
// the symmetric signed Quantizer; Affine covers activations, whose
// ranges are one-sided and shift layer to layer.
type Affine struct {
	// Bits is the code width.
	Bits int
	// Scale is the real size of one code step. Zero means a degenerate
	// all-zero tensor: every value maps to the zero point.
	Scale float64
	// Zero is the code of real 0.0.
	Zero int64
}

// CalibrateAffine fits a Bits-wide affine grid to the observed range
// of data, widened to include 0 so the zero point is exact.
func CalibrateAffine(data []float64, bits int) Affine {
	lo, hi := 0.0, 0.0
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	a := Affine{Bits: bits}
	if hi == lo {
		return a
	}
	a.Scale = (hi - lo) / float64(a.MaxCode())
	a.Zero = int64(math.Round(-lo / a.Scale))
	return a
}

// MaxCode returns the largest representable code, 2^Bits - 1.
func (a Affine) MaxCode() int64 { return 1<<uint(a.Bits) - 1 }

// Code returns the integer code for x, clipped to [0, MaxCode].
func (a Affine) Code(x float64) int64 {
	if a.Scale <= 0 {
		return a.Zero
	}
	n := math.Round(x/a.Scale) + float64(a.Zero)
	if n < 0 {
		n = 0
	}
	if max := float64(a.MaxCode()); n > max {
		n = max
	}
	return int64(n)
}

// Dequantize converts a code back to a real value.
func (a Affine) Dequantize(code int64) float64 {
	return a.Scale * float64(code-a.Zero)
}

// Quantize snaps x onto the affine grid and returns the dequantized
// real value.
func (a Affine) Quantize(x float64) float64 {
	return a.Dequantize(a.Code(x))
}

// Requantize maps an integer accumulator acc = sum (qx - Zx) * qw back
// to the real line: the digital aggregation unit's single multiply by
// the product of the activation and weight scales. Biases and
// activation functions apply after this, in real space, before the
// next layer's Code pass.
func Requantize(acc int64, actScale, wScale float64) float64 {
	return float64(acc) * actScale * wScale
}
