package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestActivationQuantizer(t *testing.T) {
	q := NewActivation(8, 1.0)
	if q.Steps() != 255 {
		t.Fatal("8-bit unsigned should have 255 steps")
	}
	if q.Quantize(0) != 0 || q.Quantize(1) != 1 {
		t.Error("endpoints must be exact")
	}
	if q.Quantize(-0.5) != 0 {
		t.Error("negative activations clip to zero")
	}
	if q.Quantize(2) != 1 {
		t.Error("overflow clips to full scale")
	}
	// Error bounded by half an LSB in range.
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1))
		return math.Abs(q.Quantize(x)-x) <= q.LSB()/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightQuantizer(t *testing.T) {
	q := NewWeight(8, 1.0)
	if q.Steps() != 127 {
		t.Fatal("8-bit signed should have 127 positive steps")
	}
	if q.Quantize(-1) != -1 || q.Quantize(1) != 1 {
		t.Error("signed endpoints must be exact")
	}
	if q.Quantize(0) != 0 {
		t.Error("zero must be exactly representable (symmetric quantizer)")
	}
	// Symmetry property.
	f := func(x float64) bool {
		x = math.Mod(x, 1)
		return math.Abs(q.Quantize(x)+q.Quantize(-x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeDequantizeRoundTrip(t *testing.T) {
	q := NewWeight(8, 2.0)
	f := func(x float64) bool {
		x = math.Mod(x, 2)
		code := q.Code(x)
		return math.Abs(q.Dequantize(code)-q.Quantize(x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if q.Code(5) != 127 || q.Code(-5) != -127 {
		t.Error("codes must clip at the rails")
	}
}

func TestScaleHandling(t *testing.T) {
	q := NewActivation(8, 4.0)
	if math.Abs(q.Quantize(2.0)-2.0) > q.LSB()/2 {
		t.Error("mid-scale quantization with non-unit scale")
	}
	degenerate := NewActivation(8, 0)
	if degenerate.Quantize(1) != 0 || degenerate.Code(1) != 0 {
		t.Error("zero scale should quantize everything to zero")
	}
}

func TestQuantizeSlice(t *testing.T) {
	q := NewWeight(4, 1.0) // coarse grid: 7 steps
	xs := []float64{0.5, -0.5, 0.99, -3}
	q.QuantizeSlice(xs)
	for _, x := range xs {
		code := x * 7
		if math.Abs(code-math.Round(code)) > 1e-9 {
			t.Errorf("%g is not on the 4-bit grid", x)
		}
	}
	if xs[3] != -1 {
		t.Error("clipping in slice form")
	}
}

func TestLowBitWidths(t *testing.T) {
	// 1-bit signed: codes {-1, 0, 1}.
	q := NewWeight(2, 1)
	if q.Steps() != 1 {
		t.Fatal("2-bit signed has one positive step")
	}
	if q.Quantize(0.6) != 1 || q.Quantize(-0.6) != -1 || q.Quantize(0.2) != 0 {
		t.Error("coarse rounding incorrect")
	}
}
