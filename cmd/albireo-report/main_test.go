package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagError(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-nonsense"}, io.Discard); err == nil {
		t.Fatal("unknown flag must error")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	t.Parallel()
	missing := filepath.Join(t.TempDir(), "no-such-dir", "report.md")
	if err := run([]string{"-o", missing}, io.Discard); err == nil {
		t.Fatal("uncreatable output file must error")
	}
}

func TestRunWritesReport(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Albireo reproduction report",
		"Table III",
		"Table IV",
		"Observed device activity",
		"observed activity matches the analytic model exactly",
		"Dataflow ablation",
		"GEMM workload zoo",
		"Transformer-Block",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Error("observed-vs-analytic activity disagreement in the default report")
	}
}

func TestRunToFile(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-o", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "Observed device activity") {
		t.Error("file output missing the observed-activity section")
	}
}
