// Command albireo-report regenerates the complete reproduction in one
// shot and writes a self-contained markdown report (tables, figures,
// and the beyond-the-paper analyses) to stdout or a file.
//
//	go run ./cmd/albireo-report > REPORT.md
//	go run ./cmd/albireo-report -o REPORT.md -bitwidth
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"albireo/internal/baseline"
	"albireo/internal/core"
	"albireo/internal/experiments"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/perf"
	"albireo/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-report:", err)
		os.Exit(1)
	}
}

// run writes the report to -o (or stdout), with every failure routed
// back as an error so main owns the one exit point.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("albireo-report", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	bitwidth := fs.Bool("bitwidth", false, "include the converter bit-width sweep (trains a model; slower)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	vgg16, ok := nn.ByName("VGG16")
	if !ok {
		return fmt.Errorf("benchmark model VGG16 missing from the zoo")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}

	fmt.Fprintf(w, "# Albireo reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s by albireo-report. Paper: Shiflett et al., ISCA 2021.\n\n",
		time.Now().Format(time.RFC3339))

	section("Table I — device power estimates", experiments.FormatTableI())
	section("Table II — optical parameters", experiments.FormatTableII())
	section("Figure 3 — noise-limited precision",
		experiments.FormatFig3(experiments.Fig3(experiments.DefaultFig3Params())))
	section("Figure 4a — MRR drop spectra", experiments.FormatFig4a([]float64{0.02, 0.03, 0.05, 0.1}))
	section("Figure 4b — MRR temporal response",
		experiments.FormatFig4b(experiments.Fig4b([]float64{0.02, 0.03, 0.05}, []float64{5e9, 10e9, 20e9, 40e9})))
	section("Figure 4c — crosstalk-limited precision",
		experiments.FormatFig4c(experiments.Fig4c([]float64{0.02, 0.03, 0.05}, 40)))
	section("Table III — chip power breakdown", experiments.FormatTableIII(core.DefaultConfig()))
	section("Figure 8 — photonic accelerator comparison", experiments.FormatFig8(experiments.Fig8()))
	section("Figure 9 — chip area breakdown", experiments.FormatFig9(experiments.Fig9(core.DefaultConfig())))
	section("Table IV — electronic comparison", experiments.FormatTableIV(experiments.TableIV()))
	section("Observed device activity — instrumented functional Conv",
		observedActivityTable(core.DefaultConfig()))
	section("Per-layer analysis — VGG16 on Albireo-C",
		experiments.FormatLayers(core.DefaultConfig(), vgg16))

	fmt.Fprintf(w, "# Beyond-the-paper analyses\n\n")
	section("Dataflow ablation", experiments.FormatDataflow(experiments.DataflowComparison()))
	section("Energy refinement", experiments.FormatEnergy(experiments.EnergyRefinement()))
	section("WDM link budget", experiments.FormatLink())
	section("Memory feasibility", experiments.FormatFeasibility(experiments.FeasibilityReport()))
	section("GEMM workload zoo — non-CNN latency and energy", workloadTable(core.DefaultConfig()))
	section("Multi-chip strong scaling (VGG16)", scaleOutTable(vgg16))
	section("Excluded baselines (Section V claim)", excludedTable(vgg16))
	if *bitwidth {
		section("Converter bit-width vs accuracy",
			experiments.FormatBitwidth(experiments.BitwidthSweep([]int{3, 4, 5, 6, 8, 10}, 60)))
	}
	return nil
}

// workloadTable evaluates the non-CNN workload zoo - MLP head, LSTM
// sequence, transformer block - through the same Algorithm 2 mapping
// the paper benchmarks use: the GEMM-family kinds schedule on the
// photonic block mapping, so latency/energy/EDP are directly
// comparable to the CNN rows.
func workloadTable(cfg core.Config) string {
	var b strings.Builder
	fmt.Fprintln(&b, "model              layers      MACs     cycles  latency(us)  energy(uJ)  util(%)")
	for _, m := range nn.WorkloadModels() {
		mapping := cfg.MapModel(m)
		r := perf.Evaluate(cfg, m)
		fmt.Fprintf(&b, "%-17s  %6d  %8d  %9d  %11.3f  %10.3f  %7.1f\n",
			m.Name, len(mapping.Layers), m.TotalMACs(), mapping.TotalCycles,
			r.Latency*1e6, r.Energy*1e6, mapping.Utilization()*100)
	}
	return b.String()
}

// scaleOutTable renders the VGG16 strong-scaling curve.
func scaleOutTable(model nn.Model) string {
	var b strings.Builder
	fmt.Fprintln(&b, "chips  latency(ms)  power(W)  EDP(mJ*ms)")
	curve := perf.ScaleOutCurve(core.DefaultConfig(), model, 8)
	for i, r := range curve {
		fmt.Fprintf(&b, "%5d  %11.4f  %8.1f  %10.4f\n", i+1, r.Latency*1e3, r.Power, r.EDP*1e6)
	}
	return b.String()
}

// observedActivityTable runs a small convolution through an
// instrumented chip and cross-checks the recorded per-device-class
// event counts against both the closed-form activity model and the
// device census - validating that the activity factors behind the
// Table III power numbers match what the functional simulator
// actually does. Any disagreement is flagged with a WARNING line.
func observedActivityTable(cfg core.Config) string {
	const (
		z, ay, ax   = 6, 16, 16
		m, k        = 12, 3
		stride, pad = 1, 1
	)
	chip := core.NewChip(cfg)
	reg := obs.NewRegistry()
	chip.Instrument(reg, nil)
	a := tensor.RandomVolume(z, ay, ax, 5)
	w := tensor.RandomKernels(m, z, k, k, 6)
	chip.Conv(a, w, tensor.ConvConfig{Stride: stride, Pad: pad}, true)

	got := core.ObservedActivity(reg.Snapshot())
	want := cfg.ExpectedConvActivity(z, ay, ax, m, k, k, stride, pad)
	census := perf.NewCensus(cfg)

	var b strings.Builder
	fmt.Fprintf(&b, "functional run: %d kernels %dx%dx%d over a %dx%dx%d input (stride %d, pad %d)\n\n",
		m, z, k, k, z, ay, ax, stride, pad)
	fmt.Fprintln(&b, "device class     devices  observed events  analytic events  events/device")
	mismatch := false
	row := func(name string, devices int, observed, analytic int64) {
		flag := ""
		if observed != analytic {
			flag = "  <-- MISMATCH"
			mismatch = true
		}
		fmt.Fprintf(&b, "%-15s  %7d  %15d  %15d  %13.1f%s\n",
			name, devices, observed, analytic, float64(observed)/float64(devices), flag)
	}
	row("weight MZMs", census.WeightMZMs, got.MZMPrograms, want.MZMPrograms)
	row("switching MRRs", census.SwitchingMRRs, got.MRRSwitches, want.MRRSwitches)
	row("balanced PDs", census.Photodiodes, got.PDReads, want.PDReads)
	row("ADCs", census.ADCs, got.ADCConversions, want.ADCConversions)
	row("PLCG steps", cfg.Ng, got.Steps, want.Steps)
	if mismatch {
		fmt.Fprintln(&b, "\nWARNING: observed device activity disagrees with the analytic activity model")
	} else {
		fmt.Fprintln(&b, "\nobserved activity matches the analytic model exactly")
	}
	return b.String()
}

// excludedTable substantiates the Section V exclusion of HolyLight and
// DNNARA at the 60 W budget.
func excludedTable(model nn.Model) string {
	var b strings.Builder
	fmt.Fprintln(&b, "design                    VGG16 latency(ms)  power(W)")
	alb := perf.Evaluate(core.Albireo27(), model)
	fmt.Fprintf(&b, "%-24s  %18.3f  %8.1f\n", "Albireo-27", alb.Latency*1e3, alb.Power)
	h := baseline.NewHolyLight().Evaluate(model)
	fmt.Fprintf(&b, "%-24s  %18.3f  %8.1f\n", h.Design, h.Latency*1e3, h.Power)
	d := baseline.NewDNNARA().Evaluate(model)
	fmt.Fprintf(&b, "%-24s  %18.3f  %8.1f\n", d.Design, d.Latency*1e3, d.Power)
	return b.String()
}
