package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"albireo/internal/journal"
	"albireo/internal/tensor"
)

// TestRunJournalStdoutMode drives the sweep mode with journaling on,
// twice: the first run creates and seals a verifiable chain, the
// second recovers it (appending a restart record), and a third run
// with different pool flags must refuse to append to a journal it
// could never replay.
func TestRunJournalStdoutMode(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "journal.d")
	args := []string{"-addr", "", "-sweeps", "1", "-sweep-batch", "1", "-size", "8", "-pool", "1", "-journal", dir}

	var first strings.Builder
	if err := run(context.Background(), args, &first); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.String(), "journal sealed at seq") {
		t.Fatalf("first run did not seal the journal: %q", first.String())
	}
	snap, err := journal.Verify(dir)
	if err != nil {
		t.Fatalf("Verify after first run: %v", err)
	}
	if snap.Count < 2 {
		t.Fatalf("journal holds %d record(s), want header plus traffic", snap.Count)
	}
	firstSeq := snap.LastSeq

	var second strings.Builder
	if err := run(context.Background(), args, &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "journal recovered at seq") {
		t.Fatalf("second run did not report recovery: %q", second.String())
	}
	full, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("Read after reopen: %v", err)
	}
	restart := full.Records[firstSeq+1]
	if restart.Kind != journal.KindRestart {
		t.Fatalf("record %d kind = %v, want restart", firstSeq+1, restart.Kind)
	}

	// A different pool shape must be refused, not appended.
	bad := []string{"-addr", "", "-sweeps", "0", "-size", "8", "-pool", "2", "-journal", dir}
	if err := run(context.Background(), bad, io.Discard); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("mismatched flags against an existing journal: err = %v", err)
	}
}

// TestJournalDisabledSurfaces checks the off state: /journal is 404
// and the response seq header is the -1 sentinel.
func TestJournalDisabledSurfaces(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	if rec := get(t, srv, "/journal"); rec.Code != http.StatusNotFound {
		t.Fatalf("/journal without -journal: %d, want 404", rec.Code)
	}
	in := tensor.RandomVolume(3, 8, 8, 9)
	rec := postInfer(t, srv, inferRequest{Z: 3, Y: 8, X: 8, Data: in.Data})
	if rec.Code != http.StatusOK {
		t.Fatalf("infer: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Albireo-Seq"); got != "-1" {
		t.Fatalf("X-Albireo-Seq = %q without journaling, want -1", got)
	}
}

// TestEndToEndJournalServe runs the real binary path with -journal: a
// live request must carry its admit seq in X-Albireo-Seq, /journal
// must report the chain head, and shutdown must seal a journal that
// verifies end to end.
func TestEndToEndJournalServe(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run() re-listens on the now-free port
	dir := filepath.Join(t.TempDir(), "journal.d")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var out strings.Builder
	// -sweeps 1 matters: server-mode startup sweeps run under the
	// tick-denominated linger, so this pins the wall ticker starting
	// before the sweeps (it used to start only after net.Listen, and
	// the sweep's partial batch waited forever on a tick that never
	// came - the listener never came up).
	go func() {
		done <- run(ctx, []string{
			"-addr", addr, "-sweeps", "1", "-sweep-batch", "1", "-size", "8",
			"-pool", "1", "-journal", dir, "-drain", "2s",
		}, &out)
	}()

	base := "http://" + addr
	waitReady(t, base)
	in := tensor.RandomVolume(3, 8, 8, 9)
	raw, _ := json.Marshal(inferRequest{Z: 3, Y: 8, X: 8, Data: in.Data})
	resp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d", resp.StatusCode)
	}
	seq, err := strconv.ParseInt(resp.Header.Get("X-Albireo-Seq"), 10, 64)
	if err != nil || seq < 1 {
		t.Fatalf("X-Albireo-Seq = %q (%v), want a positive admit seq", resp.Header.Get("X-Albireo-Seq"), err)
	}

	jresp, err := http.Get(base + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("/journal: %d %s", jresp.StatusCode, jbody)
	}
	var st journal.Status
	if err := json.Unmarshal(jbody, &st); err != nil {
		t.Fatalf("/journal JSON: %v\n%s", err, jbody)
	}
	if st.Degraded || st.HeadSeq < uint64(seq) {
		t.Fatalf("journal status = %+v, want healthy head at or past seq %d", st, seq)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	if !strings.Contains(out.String(), "journal sealed at seq") {
		t.Errorf("shutdown log: %q", out.String())
	}
	snap, err := journal.Verify(dir)
	if err != nil {
		t.Fatalf("Verify after shutdown: %v", err)
	}
	if snap.LastSeq < uint64(seq) {
		t.Fatalf("sealed journal head %d behind served seq %d", snap.LastSeq, seq)
	}
}
