package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"albireo/internal/tensor"
)

func postGEMM(t *testing.T, h http.Handler, req gemmRequest) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/gemm", bytes.NewReader(raw))
	r.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, r)
	return rec
}

func wireMatrix(m *tensor.Matrix) gemmMatrix {
	return gemmMatrix{R: m.R, C: m.C, Data: m.Data}
}

func TestGEMMEndpoint(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	a := tensor.RandomMatrix(4, 12, 81)
	b := tensor.RandomMatrix(12, 6, 82)
	rec := postGEMM(t, srv, gemmRequest{A: wireMatrix(a), B: wireMatrix(b)})
	if rec.Code != http.StatusOK {
		t.Fatalf("gemm status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Albireo-Seq") == "" {
		t.Fatal("response missing X-Albireo-Seq")
	}
	var resp gemmResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("gemm JSON: %v", err)
	}
	if resp.R != a.R || resp.C != b.C || len(resp.Data) != a.R*b.C {
		t.Fatalf("result shape %dx%d (%d values), want %dx%d", resp.R, resp.C, len(resp.Data), a.R, b.C)
	}
	// The served result must be close to the exact product (one analog
	// GEMM against the digital reference).
	want := tensor.MatMul(a, b)
	var num, den float64
	for i := range resp.Data {
		d := resp.Data[i] - want.Data[i]
		num += d * d
		den += want.Data[i] * want.Data[i]
	}
	if r := math.Sqrt(num / den); r > 0.5 {
		t.Fatalf("served GEMM relative RMS vs exact = %v", r)
	}
}

func TestGEMMEndpointOpTags(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	a := tensor.RandomMatrix(2, 4, 83)
	b := tensor.RandomMatrix(4, 3, 84)
	for _, op := range []string{"", "gemm", "lstm", "attention"} {
		if rec := postGEMM(t, srv, gemmRequest{Op: op, A: wireMatrix(a), B: wireMatrix(b)}); rec.Code != http.StatusOK {
			t.Fatalf("op %q: status %d: %s", op, rec.Code, rec.Body.String())
		}
	}
	if rec := postGEMM(t, srv, gemmRequest{Op: "conv", A: wireMatrix(a), B: wireMatrix(b)}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown op accepted: %d", rec.Code)
	}
}

func TestGEMMEndpointRejects(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	a := tensor.RandomMatrix(2, 4, 85)
	b := tensor.RandomMatrix(4, 3, 86)

	if rec := get(t, srv, "/v1/gemm"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/gemm: %d", rec.Code)
	}
	// Inner-dimension mismatch.
	bad := tensor.RandomMatrix(5, 3, 87)
	if rec := postGEMM(t, srv, gemmRequest{A: wireMatrix(a), B: wireMatrix(bad)}); rec.Code != http.StatusBadRequest {
		t.Fatalf("inner mismatch: %d", rec.Code)
	}
	// Data length mismatch.
	short := gemmMatrix{R: 2, C: 4, Data: []float64{1, 2}}
	if rec := postGEMM(t, srv, gemmRequest{A: short, B: wireMatrix(b)}); rec.Code != http.StatusBadRequest {
		t.Fatalf("short data: %d", rec.Code)
	}
	// Non-positive dimensions.
	if rec := postGEMM(t, srv, gemmRequest{A: gemmMatrix{R: 0, C: 0}, B: wireMatrix(b)}); rec.Code != http.StatusBadRequest {
		t.Fatalf("zero dims: %d", rec.Code)
	}
}

// TestGEMMEndpointRelu: relu in the request clamps the served output.
func TestGEMMEndpointRelu(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	a := tensor.RandomMatrix(3, 8, 88)
	b := tensor.RandomMatrix(8, 4, 89)
	rec := postGEMM(t, srv, gemmRequest{A: wireMatrix(a), B: wireMatrix(b), ReLU: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("gemm relu status %d: %s", rec.Code, rec.Body.String())
	}
	var resp gemmResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, v := range resp.Data {
		if v < 0 {
			t.Fatalf("ReLU output[%d] = %v < 0", i, v)
		}
	}
}
