// Command albireo-serve exposes the simulator's observability surface
// over HTTP: Prometheus-format device-activity metrics, the structured
// event trace, a health probe, and the standard pprof handlers.
//
// On startup it runs a configurable number of instrumented sweeps -
// tiny networks through the analog chip with a digital reference
// attached, plus a dataflow simulation - so the endpoints have real
// telemetry to show. With -addr "" it skips listening and prints the
// metrics to stdout, which is the scriptable/CI mode:
//
//	albireo-serve -addr :8080          # serve http://localhost:8080/metrics
//	albireo-serve -addr "" -sweeps 1   # one sweep, metrics to stdout
//
// All simulation telemetry is cycle/event-denominated and
// deterministic; wall time exists only here at the cmd boundary,
// injected through obs.Clock for the uptime gauge.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/sim"
	"albireo/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-serve:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a single exit point so tests can drive
// it end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", `listen address; "" runs the sweeps and prints metrics to stdout instead of serving`)
	sweeps := fs.Int("sweeps", 1, "instrumented inference sweeps to run at startup")
	batch := fs.Int("batch", 2, "inputs per sweep")
	size := fs.Int("size", 12, "input spatial size")
	seed := fs.Int64("seed", 1, "weight/input seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	if *size < 8 {
		return fmt.Errorf("size must be >= 8, got %d", *size)
	}
	if *sweeps < 0 {
		return fmt.Errorf("sweeps must be >= 0, got %d", *sweeps)
	}

	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	for i := 0; i < *sweeps; i++ {
		if err := sweep(reg, trace, *batch, *size, *seed+int64(i)); err != nil {
			return err
		}
	}

	if *addr == "" {
		return reg.WritePrometheus(out)
	}
	clock := obs.WallClock{}
	srv := newServer(reg, trace, clock, clock.Now())
	fmt.Fprintf(out, "albireo-serve listening on %s (endpoints: /metrics /trace /healthz /debug/pprof/)\n", *addr)
	return http.ListenAndServe(*addr, srv)
}

// sweep runs one instrumented batch: the tiny CNN through the analog
// chip (device-activity counters, layer spans, divergence vs the
// exact reference) and a dataflow simulation of MobileNet (cycle,
// SRAM-traffic, and kernel-cache-locality counters).
func sweep(reg *obs.Registry, trace *obs.Trace, batch, size int, seed int64) error {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	analog := inference.NewAnalog(cfg)
	analog.Chip.Instrument(reg, trace)
	be := inference.Observe(analog, reg, trace).WithReference(inference.Exact{})

	net := inference.TinyCNN(3, size, seed)
	for i := 0; i < batch; i++ {
		in := tensor.RandomVolume(3, size, size, seed*1000+int64(i))
		net.Run(be, in)
	}

	p := sim.DefaultParams()
	p.Obs = reg
	p.Trace = trace
	sim.SimulateModel(p, nn.MobileNet())
	return nil
}

// newServer builds the HTTP surface. The clock is injected so tests
// can pin the uptime gauge; simulation telemetry never touches it.
func newServer(reg *obs.Registry, trace *obs.Trace, clock obs.Clock, start time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg.Gauge("albireo_serve_uptime_seconds").Set(clock.Now().Sub(start).Seconds())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		raw, err := trace.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
