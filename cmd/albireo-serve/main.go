// Command albireo-serve exposes the simulator's observability surface
// over HTTP: Prometheus-format device-activity metrics, the structured
// event trace, the BIST health report, liveness/readiness probes, and
// the standard pprof handlers.
//
// On startup it builds one shared analog chip, optionally injects
// faults (-detune), runs a BIST scan and quarantines whatever it
// localizes, then runs a configurable number of accuracy-guarded
// sweeps - tiny networks through the degraded chip with a digital
// reference guarding each layer - so the endpoints have real telemetry
// to show. With -addr "" it skips listening and prints the metrics (or,
// with -bist, the BIST health report) to stdout, which is the
// scriptable/CI mode:
//
//	albireo-serve -addr :8080            # serve http://localhost:8080/metrics
//	albireo-serve -addr "" -sweeps 1     # one sweep, metrics to stdout
//	albireo-serve -addr "" -bist         # BIST health report JSON to stdout
//	albireo-serve -detune "0,0,4,2,0.4"  # start with a detuned ring
//
// The server shuts down gracefully on SIGINT/SIGTERM: the readiness
// probe flips to 503, in-flight requests drain (bounded by -drain),
// and only then does the process exit. /healthz stays 200 while the
// fabric is degraded (the process is alive and serving around the
// quarantined units) but reports the degradation; /readyz reflects
// serving state.
//
// All simulation telemetry is cycle/event-denominated and
// deterministic; wall time exists only here at the cmd boundary,
// injected through obs.Clock for the uptime gauge.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/nn"
	"albireo/internal/obs"
	"albireo/internal/sim"
	"albireo/internal/tensor"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-serve:", err)
		os.Exit(1)
	}
}

// handlerTimeout bounds each data-endpoint request; pprof handlers are
// exempt (profiles legitimately run long).
const handlerTimeout = 10 * time.Second

// run is the whole tool behind a single exit point so tests can drive
// it end to end.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", `listen address; "" runs the sweeps and prints to stdout instead of serving`)
	sweeps := fs.Int("sweeps", 1, "instrumented inference sweeps to run at startup")
	batch := fs.Int("batch", 2, "inputs per sweep")
	size := fs.Int("size", 12, "input spatial size")
	seed := fs.Int64("seed", 1, "weight/input seed")
	budget := fs.Float64("budget", 0.5, "accuracy-guard relative divergence budget per layer")
	detune := fs.String("detune", "", `inject faults before the BIST scan: "group,unit,tap,column,residual[,driftPerCycle]", semicolon-separated`)
	bist := fs.Bool("bist", false, `with -addr "": print the BIST health report JSON instead of metrics`)
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	if *size < 8 {
		return fmt.Errorf("size must be >= 8, got %d", *size)
	}
	if *sweeps < 0 {
		return fmt.Errorf("sweeps must be >= 0, got %d", *sweeps)
	}
	if *budget <= 0 {
		return fmt.Errorf("budget must be > 0, got %g", *budget)
	}

	reg := obs.NewRegistry()
	trace := obs.NewTrace()

	// One shared chip behind every endpoint: the health report, the
	// degradation state, and the sweeps all describe the same fabric.
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	analog := inference.NewAnalog(cfg)
	analog.Chip.Instrument(reg, trace)
	if err := injectFaultSpecs(analog.Chip, cfg, *detune); err != nil {
		return err
	}

	eng := health.New(analog.Chip, health.Options{})
	eng.Instrument(reg, trace)
	report := eng.Scan()
	if !report.Healthy() {
		quarantined, err := eng.QuarantineFindings(report)
		for _, u := range quarantined {
			fmt.Fprintf(out, "albireo-serve: BIST quarantined %v\n", u)
		}
		if err != nil {
			fmt.Fprintf(out, "albireo-serve: quarantine incomplete: %v\n", err)
		}
	}

	guarded := inference.Guard(analog, inference.Exact{}, *budget).Instrument(reg, trace)
	be := inference.Observe(guarded, reg, trace)
	for i := 0; i < *sweeps; i++ {
		sweep(reg, trace, be, *batch, *size, *seed+int64(i))
	}

	if *addr == "" {
		if *bist {
			raw, err := report.JSON()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(out, "%s\n", raw)
			return err
		}
		return reg.WritePrometheus(out)
	}

	clock := obs.WallClock{}
	st := &serveState{
		reg:    reg,
		trace:  trace,
		clock:  clock,
		start:  clock.Now(),
		chip:   analog.Chip,
		report: report,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "albireo-serve listening on %s (endpoints: /metrics /trace /bist /healthz /readyz /debug/pprof/)\n", ln.Addr())
	return serveGracefully(ctx, ln, newServer(st), *drain, &st.ready, out)
}

// injectFaultSpecs parses and injects the -detune fault list. Each
// spec is "group,unit,tap,column,residual[,driftPerCycle]".
func injectFaultSpecs(chip *core.Chip, cfg core.Config, specs string) error {
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ",")
		if len(parts) != 5 && len(parts) != 6 {
			return fmt.Errorf("detune spec %q: want group,unit,tap,column,residual[,drift]", spec)
		}
		ints := make([]int, 4)
		for i := range ints {
			v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				return fmt.Errorf("detune spec %q: %v", spec, err)
			}
			ints[i] = v
		}
		residual, err := strconv.ParseFloat(strings.TrimSpace(parts[4]), 64)
		if err != nil {
			return fmt.Errorf("detune spec %q: %v", spec, err)
		}
		var driftRate float64
		if len(parts) == 6 {
			if driftRate, err = strconv.ParseFloat(strings.TrimSpace(parts[5]), 64); err != nil {
				return fmt.Errorf("detune spec %q: %v", spec, err)
			}
		}
		// Validate here so unphysical flags surface as flag errors, not
		// as the core package's invariant panics.
		if ints[2] < 0 || ints[2] >= cfg.Nm {
			return fmt.Errorf("detune spec %q: tap outside [0,%d)", spec, cfg.Nm)
		}
		if ints[3] < 0 || ints[3] >= cfg.Nd {
			return fmt.Errorf("detune spec %q: column outside [0,%d)", spec, cfg.Nd)
		}
		if residual < 0 || residual > 1 {
			return fmt.Errorf("detune spec %q: residual outside [0,1]", spec)
		}
		if driftRate < 0 {
			return fmt.Errorf("detune spec %q: drift must be >= 0", spec)
		}
		f := core.Fault{Kind: core.DetunedRing, Tap: ints[2], Column: ints[3], Value: residual, Drift: driftRate}
		if err := chip.InjectFault(ints[0], ints[1], f); err != nil {
			return fmt.Errorf("detune spec %q: %v", spec, err)
		}
	}
	return nil
}

// sweep runs one instrumented batch: the tiny CNN through the given
// backend (device-activity counters, layer spans, guard checks) and a
// dataflow simulation of MobileNet (cycle, SRAM-traffic, and
// kernel-cache-locality counters).
func sweep(reg *obs.Registry, trace *obs.Trace, be inference.Backend, batch, size int, seed int64) {
	net := inference.TinyCNN(3, size, seed)
	for i := 0; i < batch; i++ {
		in := tensor.RandomVolume(3, size, size, seed*1000+int64(i))
		net.Run(be, in)
	}

	p := sim.DefaultParams()
	p.Obs = reg
	p.Trace = trace
	sim.SimulateModel(p, nn.MobileNet())
}

// serveState is everything the HTTP surface reads: instruments, the
// shared chip (live quarantine state), the startup BIST report, and
// the readiness flag serveGracefully toggles.
type serveState struct {
	reg    *obs.Registry
	trace  *obs.Trace
	clock  obs.Clock
	start  time.Time
	chip   *core.Chip
	report health.Report
	ready  atomic.Bool
}

// newServer builds the HTTP surface. The clock is injected so tests
// can pin the uptime gauge; simulation telemetry never touches it.
// Data endpoints are bounded by handlerTimeout; pprof is not (profiles
// stream for their requested duration).
func newServer(st *serveState) http.Handler {
	mux := http.NewServeMux()
	timed := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, http.TimeoutHandler(h, handlerTimeout, "request timed out"))
	}
	timed("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st.reg.Gauge("albireo_serve_uptime_seconds").Set(st.clock.Now().Sub(st.start).Seconds())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := st.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	timed("/trace", func(w http.ResponseWriter, r *http.Request) {
		raw, err := st.trace.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	timed("/bist", func(w http.ResponseWriter, r *http.Request) {
		raw, err := st.report.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	timed("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: 200 as long as the process serves, even degraded -
		// restarts don't fix broken analog hardware. The body carries
		// the degradation detail for operators.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		q := st.chip.Quarantined()
		if len(q) == 0 {
			fmt.Fprintln(w, "ok")
			return
		}
		refs := make([]string, len(q))
		for i, u := range q {
			refs[i] = u.String()
		}
		fmt.Fprintf(w, "degraded: %d unit(s) quarantined (%s); %d fault(s) localized\n",
			len(q), strings.Join(refs, ", "), len(st.report.Findings))
	})
	timed("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !st.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		if st.chip.Degraded() {
			fmt.Fprintln(w, "ready (degraded)")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveGracefully serves h on ln until ctx is cancelled, then drains:
// readiness flips off (load balancers stop sending), in-flight
// requests get up to drain to finish, and the listener closes. Returns
// nil on a clean drain.
func serveGracefully(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration, ready *atomic.Bool, out io.Writer) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	ready.Store(true)
	select {
	case err := <-errc:
		ready.Store(false)
		return err
	case <-ctx.Done():
	}
	ready.Store(false)
	fmt.Fprintf(out, "albireo-serve: shutting down, draining for up to %v\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		<-errc
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "albireo-serve: drained")
	return nil
}
