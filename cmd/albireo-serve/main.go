// Command albireo-serve is the inference front end: it owns a fleet of
// analog chips (internal/fleet) and serves requests onto them, while
// exposing the simulator's observability surface over HTTP -
// Prometheus-format device-activity metrics, the structured event
// trace, per-worker BIST health, liveness/readiness probes, and the
// standard pprof handlers.
//
// On startup it builds -pool chips (each seeded distinctly), optionally
// injects faults into worker 0 (-detune), and starts the fleet: every
// chip gets a BIST scan, faulty workers are drained from the routing
// set, and the survivors serve. Inference arrives two ways:
//
//   - POST /v1/infer with a JSON tensor {"z":3,"y":12,"x":12,
//     "data":[...]} returns the served model's logits and top-1 class.
//     Requests coalesce into micro-batches (-batch, -linger), the
//     admission queue is bounded (-queue), and overload sheds with 503.
//   - POST /v1/gemm with {"op":"gemm","a":{"r":4,"c":16,"data":[...]},
//     "b":{"r":16,"c":8,"data":[...]},"relu":false} runs one dense
//     matrix product on the pool and returns the result matrix. The op
//     tag ("gemm", "lstm", or "attention") is recorded in the journal
//     so replay and telemetry keep workload attribution.
//   - -sweeps runs the built-in load generator (fleet.Sweep) through
//     the pool at startup so the endpoints have telemetry to show.
//
// With -addr "" it skips listening and prints the metrics (or, with
// -bist, the per-worker BIST health JSON) to stdout, which is the
// scriptable/CI mode:
//
//	albireo-serve -addr :8080            # serve http://localhost:8080/v1/infer
//	albireo-serve -addr "" -sweeps 1     # one sweep, metrics to stdout
//	albireo-serve -addr "" -bist         # per-worker BIST JSON to stdout
//	albireo-serve -pool 4 -linger 1ms    # 4 chips, 1ms batch linger
//	albireo-serve -detune "0,0,4,2,0.4"  # worker 0 starts with a detuned ring
//
// The server shuts down gracefully on SIGINT/SIGTERM: the readiness
// probe flips to 503, in-flight requests drain (bounded by -drain), the
// fleet flushes its pending batches, and only then does the process
// exit. /healthz stays 200 while the fleet is degraded (the pool is
// alive and serving around the drained workers) but reports the
// degradation; /readyz reflects serving state.
//
// All simulation telemetry is cycle/event-denominated and
// deterministic; wall time exists only here at the cmd boundary - the
// uptime gauge reads the injected obs.Clock, and the fleet's batch
// linger is advanced by a wall ticker calling Scheduler.Tick (tests
// tick the scheduler directly).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/journal"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-serve:", err)
		os.Exit(1)
	}
}

// handlerTimeout bounds each data-endpoint request; pprof handlers are
// exempt (profiles legitimately run long).
const handlerTimeout = 10 * time.Second

// maxInferBody bounds a /v1/infer request body.
const maxInferBody = 8 << 20

// reprobeInterval is roughly how often drained workers are re-scanned
// for return-to-service (rounded to whole linger ticks).
const reprobeInterval = 5 * time.Second

// run is the whole tool behind a single exit point so tests can drive
// it end to end.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", `listen address; "" runs the sweeps and prints to stdout instead of serving`)
	pool := fs.Int("pool", 2, "number of chip workers in the fleet")
	queue := fs.Int("queue", 64, "admission queue depth; submissions past it shed with 503")
	batch := fs.Int("batch", 8, "max requests coalesced into one micro-batch")
	linger := fs.Duration("linger", 2*time.Millisecond, "max time a partial batch waits for more compatible requests; 0 dispatches immediately")
	sweeps := fs.Int("sweeps", 1, "load-generator sweeps to run through the fleet at startup")
	sweepBatch := fs.Int("sweep-batch", 2, "inputs per load-generator sweep")
	size := fs.Int("size", 12, "served model input spatial size")
	seed := fs.Int64("seed", 1, "weight/input seed (worker i's chip uses seed+i)")
	budget := fs.Float64("budget", 0.5, "accuracy-guard relative divergence budget per layer")
	detune := fs.String("detune", "", `inject faults into worker 0 before the BIST scan: "group,unit,tap,column,residual[,driftPerCycle]", semicolon-separated`)
	keepDegraded := fs.Bool("keep-degraded", true, "keep faulty workers serving on their surviving units at reduced weight; false drains the whole worker")
	shard := fs.Bool("shard", false, "fan each layer's output kernels out across the pool at the kernel-group boundary and merge (pool >= 2): lower single-inference latency, bit-identical outputs")
	bist := fs.Bool("bist", false, `with -addr "": print the per-worker BIST health JSON instead of metrics`)
	journalDir := fs.String("journal", "", "append a hash-chained request journal under this directory (created if absent; reopened with crash recovery if it already holds one)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pool < 1 {
		return fmt.Errorf("pool must be >= 1, got %d", *pool)
	}
	if *queue < 1 {
		return fmt.Errorf("queue must be >= 1, got %d", *queue)
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	if *linger < 0 {
		return fmt.Errorf("linger must be >= 0, got %v", *linger)
	}
	if *sweepBatch < 1 {
		return fmt.Errorf("sweep-batch must be >= 1, got %d", *sweepBatch)
	}
	if *size < 8 {
		return fmt.Errorf("size must be >= 8, got %d", *size)
	}
	if *sweeps < 0 {
		return fmt.Errorf("sweeps must be >= 0, got %d", *sweeps)
	}
	if *budget <= 0 {
		return fmt.Errorf("budget must be > 0, got %g", *budget)
	}

	reg := obs.NewRegistry()
	trace := obs.NewTrace()

	// Build the pool: each worker is an accuracy-guarded, observed
	// analog backend on its own distinctly seeded chip. Chip activity
	// counters share the registry and sum fleet-wide. The PoolSpec is
	// exactly what the journal header records, so albireo-replay can
	// rebuild this pool bit-identically.
	spec := fleet.PoolSpec{
		Pool:         *pool,
		Seed:         *seed,
		Budget:       *budget,
		Detune:       *detune,
		KeepDegraded: *keepDegraded,
	}
	units, guards, err := fleet.BuildUnits(spec, reg, trace)
	if err != nil {
		return err
	}

	// Journaling: the chain is created fresh or reopened with crash
	// recovery; flags must match the recorded header, or the chain
	// would stop being replayable against one pool.
	var jrn *journal.Async
	if *journalDir != "" {
		hdr := journal.Header{
			Pool:         int64(*pool),
			Seed:         *seed,
			Size:         int64(*size),
			Budget:       *budget,
			KeepDegraded: *keepDegraded,
			Detune:       *detune,
		}
		jw, err := openJournal(*journalDir, hdr, out)
		if err != nil {
			return err
		}
		jrn = journal.NewAsync(jw, 0).Instrument(reg, trace)
		jrn.Start()
		// Guarded fallbacks happen inside the backend, invisible to the
		// scheduler; each worker's guard journals them directly.
		for i, g := range guards {
			worker := int64(i)
			g.FallbackHook = func(kind string) {
				op := journal.OpConv
				switch kind {
				case "fc":
					op = journal.OpFC
				case "gemm":
					op = journal.OpGEMM
				}
				jrn.Record(journal.KindFallback, journal.EncodeFallback(journal.Fallback{Worker: worker, Op: op}))
			}
		}
	}

	// Linger is denominated in ticks inside the fleet; the wall ticker
	// below advances one tick per -linger period, so MaxLinger 1 tick
	// realizes the flag. Stdout mode runs no ticker and dispatches
	// immediately.
	opt := fleet.Options{MaxBatch: *batch, QueueDepth: *queue, KeepDegraded: *keepDegraded, Shard: *shard, Journal: jrn}
	tickEvery := *linger
	if *addr != "" {
		if tickEvery > 0 {
			opt.MaxLinger = 1
		} else {
			tickEvery = 100 * time.Millisecond // reprobe-only ticks
		}
		opt.ReprobeEvery = int(reprobeInterval / tickEvery)
		if opt.ReprobeEvery < 1 {
			opt.ReprobeEvery = 1
		}
	}
	// sealJournal drains and closes the journal; every exit path after
	// this point runs it exactly once (it is idempotent).
	sealJournal := func() error {
		if jrn == nil {
			return nil
		}
		if err := jrn.Close(); err != nil {
			return fmt.Errorf("journal close: %w", err)
		}
		st := jrn.Status()
		fmt.Fprintf(out, "albireo-serve: journal sealed at seq %d (degraded=%v)\n", st.HeadSeq, st.Degraded)
		return nil
	}

	sched, err := fleet.New(opt, units...)
	if err != nil {
		sealJournal()
		return err
	}
	sched.Instrument(reg, trace)
	if err := sched.Start(); err != nil {
		sealJournal()
		return err
	}
	for _, wi := range sched.Info() {
		if !wi.InService {
			fmt.Fprintf(out, "albireo-serve: BIST drained worker %d (%d finding(s))\n", wi.Worker, len(wi.Report.Findings))
		} else if wi.Degraded {
			fmt.Fprintf(out, "albireo-serve: worker %d serving degraded (weight %d)\n", wi.Worker, wi.Weight)
		}
	}

	// The wall ticker is the fleet's clock: one Tick per period drives
	// batch linger and re-probe scheduling. It lives only here at the
	// cmd boundary, and it must spin up before the startup sweeps:
	// server-mode linger is denominated in ticks, so a sweep dispatched
	// into a tickless scheduler would wait on its partial batch forever
	// and the listener would never come up. Stdout mode dispatches
	// immediately (MaxLinger 0) and runs no ticker.
	stopTicker := func() {}
	if *addr != "" {
		tickerDone := make(chan struct{})
		tickerStop := make(chan struct{})
		ticker := time.NewTicker(tickEvery)
		go func() {
			defer close(tickerDone)
			for {
				select {
				case <-ticker.C:
					sched.Tick()
				case <-tickerStop:
					return
				}
			}
		}()
		stopTicker = func() {
			ticker.Stop()
			close(tickerStop)
			<-tickerDone
		}
	}

	// Load generation through the fleet: sequential, so stdout-mode
	// telemetry is deterministic.
	bound := sched.Bind(ctx)
	if err := fleet.Sweeps(ctx, reg, trace, bound, *sweeps, *sweepBatch, *size, *seed); err != nil {
		stopTicker()
		sched.Close(context.Background())
		sealJournal()
		return err
	}
	if err := bound.Err(); err != nil {
		stopTicker()
		sched.Close(context.Background())
		sealJournal()
		return fmt.Errorf("startup sweeps: %w", err)
	}

	if *addr == "" {
		if err := sched.Close(ctx); err != nil {
			sealJournal()
			return err
		}
		// Seal before printing metrics so the journal counters are
		// settled and the stdout telemetry stays deterministic.
		if err := sealJournal(); err != nil {
			return err
		}
		if *bist {
			raw, err := json.MarshalIndent(bistDoc{Workers: sched.Info()}, "", "  ")
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(out, "%s\n", raw)
			return err
		}
		return reg.WritePrometheus(out)
	}

	clock := obs.WallClock{}
	st := &serveState{
		reg:        reg,
		trace:      trace,
		clock:      clock,
		start:      clock.Now(),
		fleet:      sched,
		journal:    jrn,
		model:      inference.TinyCNN(3, *size, *seed),
		inZ:        3,
		size:       *size,
		inferTicks: reg.Histogram("albireo_serve_infer_ticks", obs.LatencyBuckets),
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		stopTicker()
		sched.Close(context.Background())
		sealJournal()
		return err
	}

	fmt.Fprintf(out, "albireo-serve listening on %s (pool %d; endpoints: /v1/infer /v1/gemm /metrics /trace /bist /journal /healthz /readyz /debug/pprof/)\n", ln.Addr(), *pool)
	serveErr := serveGracefully(ctx, ln, newServer(st), *drain, &st.ready, out)

	stopTicker()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := sched.Close(dctx); err != nil {
		if serveErr == nil {
			serveErr = fmt.Errorf("fleet drain incomplete: %w", err)
		}
	} else {
		fmt.Fprintln(out, "albireo-serve: fleet drained")
	}
	if err := sealJournal(); err != nil && serveErr == nil {
		serveErr = err
	}
	return serveErr
}

// openJournal creates the journal, or reopens an existing one with
// crash recovery after verifying its header matches the current
// flags - appending under different pool flags would leave a chain no
// single rebuilt pool can replay.
func openJournal(dir string, hdr journal.Header, out io.Writer) (*journal.Writer, error) {
	if !journal.Exists(dir) {
		return journal.Create(dir, hdr, journal.Options{})
	}
	w, got, rec, err := journal.OpenAppend(dir, journal.Options{})
	if err != nil {
		return nil, fmt.Errorf("journal reopen: %w", err)
	}
	if got != hdr {
		w.Close()
		return nil, fmt.Errorf("journal %s was recorded under different flags (pool %d, seed %d, size %d, budget %g, keep-degraded %v, detune %q); rerun with matching flags or a fresh directory",
			dir, got.Pool, got.Seed, got.Size, got.Budget, got.KeepDegraded, got.Detune)
	}
	fmt.Fprintf(out, "albireo-serve: journal recovered at seq %d (%d torn byte(s) truncated)\n", rec.LastSeq, rec.TruncatedBytes)
	return w, nil
}

// bistDoc is the /bist (and -bist) wire shape: one report per worker.
type bistDoc struct {
	Workers []fleet.WorkerInfo `json:"workers"`
}

// serveState is everything the HTTP surface reads: instruments, the
// fleet (live routing and health state), the served model, and the
// readiness flag serveGracefully toggles.
type serveState struct {
	reg   *obs.Registry
	trace *obs.Trace
	clock obs.Clock
	start time.Time
	fleet *fleet.Scheduler
	// journal is the async journal appender, nil when -journal is off.
	journal *journal.Async
	model   *inference.Network
	inZ     int
	size    int
	ready   atomic.Bool
	// inferTicks is served-request latency denominated in fleet linger
	// ticks (the delta of Scheduler.Ticks across the model run) - the
	// deterministic sibling of a wall-time request histogram.
	inferTicks *obs.Histogram
}

// inferRequest is the /v1/infer input: one activation volume.
type inferRequest struct {
	Z    int       `json:"z"`
	Y    int       `json:"y"`
	X    int       `json:"x"`
	Data []float64 `json:"data"`
}

// inferResponse is the /v1/infer output.
type inferResponse struct {
	Model  string    `json:"model"`
	Logits []float64 `json:"logits"`
	Top1   int       `json:"top1"`
}

// inferStatus maps a fleet submission failure to an HTTP status.
func inferStatus(err error) int {
	switch {
	case errors.Is(err, fleet.ErrOverloaded), errors.Is(err, fleet.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handleInfer is POST /v1/infer: decode the tensor, run the served
// model through the fleet under the request's context, return logits
// and the top-1 class.
func (st *serveState) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req inferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInferBody))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Z != st.inZ || req.Y != st.size || req.X != st.size {
		http.Error(w, fmt.Sprintf("input shape %dx%dx%d, served model wants %dx%dx%d",
			req.Z, req.Y, req.X, st.inZ, st.size, st.size), http.StatusBadRequest)
		return
	}
	if len(req.Data) != req.Z*req.Y*req.X {
		http.Error(w, fmt.Sprintf("data length %d, want %d", len(req.Data), req.Z*req.Y*req.X), http.StatusBadRequest)
		return
	}
	vol := &tensor.Volume{Z: req.Z, Y: req.Y, X: req.X, Data: req.Data}

	before := st.fleet.Ticks()
	bound := st.fleet.Bind(r.Context())
	logits := st.model.Run(bound, vol)
	// Every response carries its journal correlation id: the sequence
	// number of the request's last admitted layer op, or -1 when
	// journaling is off (or the journal refused the record).
	w.Header().Set("X-Albireo-Seq", strconv.FormatInt(bound.JournalSeq(), 10))
	if err := bound.Err(); err != nil {
		http.Error(w, err.Error(), inferStatus(err))
		return
	}
	st.inferTicks.Observe(float64(st.fleet.Ticks() - before))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(inferResponse{
		Model:  st.model.Name,
		Logits: logits,
		Top1:   inference.Argmax(logits),
	})
}

// gemmMatrix is a matrix operand on the /v1/gemm wire.
type gemmMatrix struct {
	R    int       `json:"r"`
	C    int       `json:"c"`
	Data []float64 `json:"data"`
}

// gemmRequest is the /v1/gemm input: two matrix operands, an optional
// activation, and an optional workload op tag.
type gemmRequest struct {
	// Op tags the workload: "gemm" (default), "lstm", or "attention".
	Op   string     `json:"op"`
	A    gemmMatrix `json:"a"`
	B    gemmMatrix `json:"b"`
	ReLU bool       `json:"relu"`
}

// gemmResponse is the /v1/gemm output.
type gemmResponse struct {
	R    int       `json:"r"`
	C    int       `json:"c"`
	Data []float64 `json:"data"`
}

// gemmOp maps the wire op tag to its journal op.
func gemmOp(s string) (journal.Op, bool) {
	switch s {
	case "", "gemm":
		return journal.OpGEMM, true
	case "lstm":
		return journal.OpLSTM, true
	case "attention":
		return journal.OpAttention, true
	default:
		return 0, false
	}
}

// checkMatrix validates one wire operand.
func checkMatrix(name string, m gemmMatrix) error {
	if m.R < 1 || m.C < 1 {
		return fmt.Errorf("matrix %s shape %dx%d: dimensions must be positive", name, m.R, m.C)
	}
	if len(m.Data) != m.R*m.C {
		return fmt.Errorf("matrix %s data length %d, want %d", name, len(m.Data), m.R*m.C)
	}
	return nil
}

// handleGEMM is POST /v1/gemm: decode the operands, run the product on
// the fleet under the request's context, return the result matrix with
// its journal correlation id.
func (st *serveState) handleGEMM(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req gemmRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInferBody))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	op, ok := gemmOp(req.Op)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown op %q (want gemm, lstm, or attention)", req.Op), http.StatusBadRequest)
		return
	}
	if err := checkMatrix("a", req.A); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := checkMatrix("b", req.B); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.A.C != req.B.R {
		http.Error(w, fmt.Sprintf("inner dimensions disagree: a is %dx%d, b is %dx%d", req.A.R, req.A.C, req.B.R, req.B.C), http.StatusBadRequest)
		return
	}
	a := &tensor.Matrix{R: req.A.R, C: req.A.C, Data: req.A.Data}
	b := &tensor.Matrix{R: req.B.R, C: req.B.C, Data: req.B.Data}

	before := st.fleet.Ticks()
	fut := st.fleet.GEMMAsyncOp(r.Context(), op, a, b, req.ReLU)
	w.Header().Set("X-Albireo-Seq", strconv.FormatInt(fut.JournalSeq(), 10))
	out, err := fut.Matrix()
	if err != nil {
		http.Error(w, err.Error(), inferStatus(err))
		return
	}
	st.inferTicks.Observe(float64(st.fleet.Ticks() - before))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(gemmResponse{R: out.R, C: out.C, Data: out.Data})
}

// newServer builds the HTTP surface. The clock is injected so tests
// can pin the uptime gauge; simulation telemetry never touches it.
// Data endpoints are bounded by handlerTimeout; pprof is not (profiles
// stream for their requested duration).
func newServer(st *serveState) http.Handler {
	mux := http.NewServeMux()
	timed := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, http.TimeoutHandler(h, handlerTimeout, "request timed out"))
	}
	timed("/v1/infer", st.handleInfer)
	timed("/v1/gemm", st.handleGEMM)
	timed("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st.reg.Gauge("albireo_serve_uptime_seconds").Set(st.clock.Now().Sub(st.start).Seconds())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := st.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	timed("/trace", func(w http.ResponseWriter, r *http.Request) {
		raw, err := st.trace.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	timed("/bist", func(w http.ResponseWriter, r *http.Request) {
		raw, err := json.MarshalIndent(bistDoc{Workers: st.fleet.Info()}, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	timed("/journal", func(w http.ResponseWriter, r *http.Request) {
		if st.journal == nil {
			http.Error(w, "journaling disabled (start with -journal DIR)", http.StatusNotFound)
			return
		}
		raw, err := json.MarshalIndent(st.journal.Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	})
	timed("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: 200 as long as the process serves, even degraded -
		// restarts don't fix broken analog hardware. The body carries
		// the degradation detail for operators.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !st.fleet.Degraded() {
			fmt.Fprintln(w, "ok")
			return
		}
		var drained, degraded []string
		for _, wi := range st.fleet.Info() {
			id := strconv.Itoa(wi.Worker)
			if !wi.InService {
				drained = append(drained, id)
			} else if wi.Degraded {
				degraded = append(degraded, id)
			}
		}
		fmt.Fprintf(w, "degraded: drained workers [%s], degraded workers [%s]\n",
			strings.Join(drained, ","), strings.Join(degraded, ","))
	})
	timed("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !st.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		if st.fleet.Degraded() {
			fmt.Fprintln(w, "ready (degraded)")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveGracefully serves h on ln until ctx is cancelled, then drains:
// readiness flips off (load balancers stop sending), in-flight
// requests get up to drain to finish, and the listener closes. Returns
// nil on a clean drain.
func serveGracefully(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration, ready *atomic.Bool, out io.Writer) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	ready.Store(true)
	select {
	case err := <-errc:
		ready.Store(false)
		return err
	case <-ctx.Done():
	}
	ready.Store(false)
	fmt.Fprintf(out, "albireo-serve: shutting down, draining for up to %v\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		<-errc
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "albireo-serve: drained")
	return nil
}
