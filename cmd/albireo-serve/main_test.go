package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"albireo/internal/obs"
)

func testServer(t *testing.T) (http.Handler, *obs.Registry, *obs.Trace, *obs.ManualClock) {
	t.Helper()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	if err := sweep(reg, trace, 1, 8, 3); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	clock := obs.NewManualClock(start)
	return newServer(reg, trace, clock, start), reg, trace, clock
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	srv, _, _, clock := testServer(t)
	clock.Advance(90 * time.Second)
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"albireo_plcg_steps_total",
		"albireo_mzm_program_events_total",
		"albireo_sim_cycles_total",
		"albireo_sram_read_bytes_total",
		"albireo_cache_hits_total",
		"albireo_inference_layers_total",
		"albireo_serve_uptime_seconds 90",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	t.Parallel()
	srv, _, trace, _ := testServer(t)
	rec := get(t, srv, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.Events) != trace.Len() {
		t.Fatalf("endpoint returned %d events, trace holds %d", len(doc.Events), trace.Len())
	}
	if len(doc.Events) == 0 {
		t.Fatal("sweep should have produced trace events")
	}
}

func TestHealthzAndPprof(t *testing.T) {
	t.Parallel()
	srv, _, _, _ := testServer(t)
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof index: %d", rec.Code)
	}
	if rec := get(t, srv, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", rec.Code)
	}
}

func TestRunNoListenPrintsMetrics(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := run([]string{"-addr", "", "-sweeps", "1", "-batch", "1", "-size", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE albireo_plcg_steps_total counter") {
		t.Fatalf("stdout mode must print Prometheus metrics:\n%.400s", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-nonsense"},
		{"-addr", "", "-batch", "0"},
		{"-addr", "", "-size", "4"},
		{"-addr", "", "-sweeps", "-1"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}

func TestSweepsAreDeterministic(t *testing.T) {
	t.Parallel()
	runOnce := func() obs.Snapshot {
		reg := obs.NewRegistry()
		if err := sweep(reg, obs.NewTrace(), 2, 8, 5); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	if a, b := runOnce(), runOnce(); !a.Equal(b) {
		t.Fatal("identical sweeps must produce bit-identical telemetry")
	}
}
