package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"albireo/internal/core"
	"albireo/internal/fleet"
	"albireo/internal/inference"
	"albireo/internal/obs"
	"albireo/internal/tensor"
)

// testState builds a server over a one-worker fleet with a sweep's
// worth of telemetry, the chip optionally pre-faulted through the
// BIST+quarantine path (KeepDegraded, like the binary's default).
func testState(t *testing.T, detune string) *serveState {
	t.Helper()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	cfg := core.DefaultConfig()
	cfg.Seed = 3
	analog := inference.NewAnalog(cfg)
	analog.Chip.Instrument(reg, trace)
	if err := fleet.InjectFaultSpecs(analog.Chip, cfg, detune); err != nil {
		t.Fatal(err)
	}
	be := inference.Observe(inference.Guard(analog, inference.Exact{}, 0.5).Instrument(reg, trace), reg, trace)
	sched, err := fleet.New(
		fleet.Options{MaxLinger: 0, QueueDepth: 16, KeepDegraded: true},
		fleet.Unit{Backend: be, Chip: analog.Chip})
	if err != nil {
		t.Fatal(err)
	}
	sched.Instrument(reg, trace)
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close(context.Background()) })
	if err := fleet.Sweep(context.Background(), reg, trace, sched.Bind(context.Background()), 1, 8, 3); err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return &serveState{
		reg: reg, trace: trace,
		clock: obs.NewManualClock(start), start: start,
		fleet: sched,
		model: inference.TinyCNN(3, 8, 3),
		inZ:   3, size: 8,
	}
}

func testServer(t *testing.T) (http.Handler, *serveState) {
	t.Helper()
	st := testState(t, "")
	st.ready.Store(true)
	return newServer(st), st
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	srv, st := testServer(t)
	st.clock.(*obs.ManualClock).Advance(90 * time.Second)
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"albireo_plcg_steps_total",
		"albireo_mzm_program_events_total",
		"albireo_sim_cycles_total",
		"albireo_sram_read_bytes_total",
		"albireo_cache_hits_total",
		"albireo_inference_layers_total",
		"albireo_bist_probes_total",
		"albireo_bist_scans_total",
		"albireo_inference_guard_checks_total",
		"albireo_fleet_queue_depth",
		"albireo_fleet_admitted_total",
		"albireo_fleet_batch_size_count",
		"albireo_fleet_worker_in_service{worker=\"0\"} 1",
		"albireo_serve_uptime_seconds 90",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	t.Parallel()
	srv, st := testServer(t)
	rec := get(t, srv, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.Events) != st.trace.Len() {
		t.Fatalf("endpoint returned %d events, trace holds %d", len(doc.Events), st.trace.Len())
	}
	if len(doc.Events) == 0 {
		t.Fatal("sweep should have produced trace events")
	}
}

func TestHealthzAndPprof(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("readyz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof index: %d", rec.Code)
	}
	if rec := get(t, srv, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", rec.Code)
	}
}

// postInfer POSTs one volume to /v1/infer.
func postInfer(t *testing.T, h http.Handler, req inferRequest) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(raw))
	r.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, r)
	return rec
}

func TestInferEndpoint(t *testing.T) {
	t.Parallel()
	srv, st := testServer(t)
	in := tensor.RandomVolume(3, 8, 8, 9)
	rec := postInfer(t, srv, inferRequest{Z: in.Z, Y: in.Y, X: in.X, Data: in.Data})
	if rec.Code != http.StatusOK {
		t.Fatalf("infer status %d: %s", rec.Code, rec.Body.String())
	}
	var resp inferResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("infer JSON: %v", err)
	}
	if len(resp.Logits) == 0 {
		t.Fatal("no logits returned")
	}
	if resp.Top1 < 0 || resp.Top1 >= len(resp.Logits) {
		t.Fatalf("top1 = %d outside [0,%d)", resp.Top1, len(resp.Logits))
	}
	if resp.Model != st.model.Name {
		t.Fatalf("model = %q, want %q", resp.Model, st.model.Name)
	}
	// The fleet result must match running the model directly on the
	// same (stateless-per-run) reference: logits are real numbers.
	if resp.Top1 != inference.Argmax(resp.Logits) {
		t.Fatal("top1 does not match the returned logits")
	}
}

func TestInferEndpointRejects(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)

	// Wrong method.
	rec := get(t, srv, "/v1/infer")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer: %d", rec.Code)
	}
	// Wrong shape.
	in := tensor.RandomVolume(3, 9, 9, 9)
	if rec := postInfer(t, srv, inferRequest{Z: 3, Y: 9, X: 9, Data: in.Data}); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong shape: %d", rec.Code)
	}
	// Data length mismatch.
	if rec := postInfer(t, srv, inferRequest{Z: 3, Y: 8, X: 8, Data: []float64{1, 2}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("short data: %d", rec.Code)
	}
	// Invalid JSON body.
	recJSON := httptest.NewRecorder()
	srv.ServeHTTP(recJSON, httptest.NewRequest("POST", "/v1/infer", strings.NewReader("{not json")))
	if recJSON.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", recJSON.Code)
	}
}

func TestDegradedStateSurfaces(t *testing.T) {
	t.Parallel()
	// Start with a dead-tuned ring: BIST localizes it, quarantine takes
	// the unit down, and the probes report a degraded-but-serving pool.
	st := testState(t, "2,1,4,3,0.0")
	st.ready.Store(true)
	srv := newServer(st)

	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200 (liveness), got %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "degraded") {
		t.Fatalf("healthz should report the degradation: %q", body)
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("readyz degraded: %d %q", rec.Code, rec.Body.String())
	}
	rec = get(t, srv, "/bist")
	var doc bistDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bist JSON: %v", err)
	}
	if len(doc.Workers) != 1 {
		t.Fatalf("bist workers: %d, want 1", len(doc.Workers))
	}
	wi := doc.Workers[0]
	if !wi.InService || !wi.Degraded {
		t.Fatalf("worker state: %+v, want in-service degraded", wi)
	}
	if len(wi.Report.Findings) == 0 {
		t.Fatal("bist report should carry the localized fault")
	}
	f := wi.Report.Findings[0]
	if f.Unit.Group != 2 || f.Unit.Unit != 1 || f.Tap != 4 || f.Column != 3 {
		t.Fatalf("bist localization wrong: %+v", f)
	}
	// Degraded pool still serves inference.
	in := tensor.RandomVolume(3, 8, 8, 9)
	if rec := postInfer(t, srv, inferRequest{Z: 3, Y: 8, X: 8, Data: in.Data}); rec.Code != http.StatusOK {
		t.Fatalf("degraded infer: %d %s", rec.Code, rec.Body.String())
	}
}

func TestReadyzNotReady(t *testing.T) {
	t.Parallel()
	st := testState(t, "")
	srv := newServer(st) // ready never stored: still starting up
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %d", rec.Code)
	}
}

func TestGracefulShutdown(t *testing.T) {
	t.Parallel()
	st := testState(t, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- serveGracefully(ctx, ln, newServer(st), 2*time.Second, &st.ready, &out)
	}()

	base := "http://" + ln.Addr().String()
	waitReady(t, base)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within the timeout")
	}
	if st.ready.Load() {
		t.Error("readiness must flip off during drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener should be closed after shutdown")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("shutdown log: %q", out.String())
	}
}

// waitReady polls the readiness endpoint until the server accepts
// connections (the Serve goroutine races the first request).
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never came up")
}

func TestRunNoListenPrintsMetrics(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-addr", "", "-sweeps", "1", "-sweep-batch", "1", "-size", "8", "-pool", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE albireo_plcg_steps_total counter") {
		t.Fatalf("stdout mode must print Prometheus metrics:\n%.400s", out)
	}
	if !strings.Contains(out, "albireo_fleet_admitted_total") {
		t.Fatalf("stdout mode must include fleet metrics:\n%.400s", out)
	}
}

func TestRunBISTReportMode(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	args := []string{"-addr", "", "-sweeps", "0", "-bist", "-pool", "2", "-detune", "0,0,4,2,0.4"}
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The per-worker JSON follows the startup log lines.
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output: %q", out)
	}
	var doc bistDoc
	if err := json.Unmarshal([]byte(out[idx:]), &doc); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out)
	}
	if len(doc.Workers) != 2 {
		t.Fatalf("workers: %d, want 2", len(doc.Workers))
	}
	w0 := doc.Workers[0]
	if len(w0.Report.Findings) != 1 || w0.Report.Findings[0].Tap != 4 || w0.Report.Findings[0].Column != 2 {
		t.Fatalf("worker 0 findings: %+v", w0.Report.Findings)
	}
	if !w0.InService || !w0.Degraded {
		t.Fatalf("worker 0 should serve degraded under -keep-degraded: %+v", w0)
	}
	if !doc.Workers[1].InService || doc.Workers[1].Degraded {
		t.Fatalf("worker 1 should be healthy: %+v", doc.Workers[1])
	}
	if !strings.Contains(out, "worker 0 serving degraded") {
		t.Fatalf("startup should log the degradation: %q", out)
	}
}

func TestRunDrainsFaultyWorker(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	args := []string{"-addr", "", "-sweeps", "0", "-bist", "-pool", "2",
		"-keep-degraded=false", "-detune", "0,0,4,2,0.4"}
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output: %q", out)
	}
	var doc bistDoc
	if err := json.Unmarshal([]byte(out[idx:]), &doc); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out)
	}
	if doc.Workers[0].InService {
		t.Fatalf("worker 0 should be drained: %+v", doc.Workers[0])
	}
	if !strings.Contains(out, "BIST drained worker 0") {
		t.Fatalf("startup should log the drain: %q", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-nonsense"},
		{"-addr", "", "-pool", "0"},
		{"-addr", "", "-queue", "0"},
		{"-addr", "", "-batch", "0"},
		{"-addr", "", "-linger", "-1ms"},
		{"-addr", "", "-sweep-batch", "0"},
		{"-addr", "", "-size", "4"},
		{"-addr", "", "-sweeps", "-1"},
		{"-addr", "", "-budget", "0"},
		{"-addr", "", "-detune", "0,0"},
		{"-addr", "", "-detune", "0,0,4,2,1.5"},
		{"-addr", "", "-detune", "0,0,99,2,0.5"},
		{"-addr", "", "-detune", "0,0,4,99,0.5"},
		{"-addr", "", "-detune", "99,0,4,2,0.5"},
		{"-addr", "", "-detune", "0,0,4,2,0.5,-1"},
		{"-addr", "", "-detune", "x,0,4,2,0.5"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}

// TestRunIsDeterministic drives the whole stdout mode twice: same
// flags, bit-identical metrics output - the fleet preserves the
// repo-wide determinism invariant end to end.
func TestRunIsDeterministic(t *testing.T) {
	t.Parallel()
	runOnce := func() string {
		var sb strings.Builder
		if err := run(context.Background(), []string{
			"-addr", "", "-sweeps", "2", "-sweep-batch", "1", "-size", "8", "-pool", "2",
		}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatal("identical runs must produce bit-identical metrics output")
	}
}

// TestEndToEndDegradedServe drives run() itself against a real socket:
// inject a fault on worker 0, let the fleet's startup BIST handle it,
// then confirm the live endpoints report the degraded-but-serving
// state, serve /v1/infer, and the process exits cleanly on cancel.
func TestEndToEndDegradedServe(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run() re-listens on the now-free port

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", addr, "-sweeps", "0", "-size", "8", "-pool", "2",
			"-detune", "0,0,4,2,0.0", "-drain", "2s",
		}, &out)
	}()

	base := "http://" + addr
	waitReady(t, base)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	in := tensor.RandomVolume(3, 8, 8, 9)
	raw, _ := json.Marshal(inferRequest{Z: 3, Y: 8, X: 8, Data: in.Data})
	iresp, err := http.Post(base+"/v1/infer", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	ibody, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d %s", iresp.StatusCode, ibody)
	}
	var inferResp inferResponse
	if err := json.Unmarshal(ibody, &inferResp); err != nil {
		t.Fatalf("infer JSON: %v", err)
	}
	if len(inferResp.Logits) == 0 {
		t.Fatal("no logits from live server")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	if !strings.Contains(out.String(), "worker 0 serving degraded") {
		t.Errorf("startup log: %q", out.String())
	}
	if !strings.Contains(out.String(), "fleet drained") {
		t.Errorf("shutdown log: %q", out.String())
	}
}
