package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"albireo/internal/core"
	"albireo/internal/health"
	"albireo/internal/inference"
	"albireo/internal/obs"
)

// testState builds a server over one sweep's worth of telemetry, with
// the chip optionally pre-faulted through the BIST+quarantine path.
func testState(t *testing.T, detune string) *serveState {
	t.Helper()
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	cfg := core.DefaultConfig()
	cfg.Seed = 3
	analog := inference.NewAnalog(cfg)
	analog.Chip.Instrument(reg, trace)
	if err := injectFaultSpecs(analog.Chip, cfg, detune); err != nil {
		t.Fatal(err)
	}
	eng := health.New(analog.Chip, health.Options{})
	eng.Instrument(reg, trace)
	report := eng.Scan()
	if !report.Healthy() {
		if _, err := eng.QuarantineFindings(report); err != nil {
			t.Fatal(err)
		}
	}
	be := inference.Observe(inference.Guard(analog, inference.Exact{}, 0.5).Instrument(reg, trace), reg, trace)
	sweep(reg, trace, be, 1, 8, 3)
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	return &serveState{
		reg: reg, trace: trace,
		clock: obs.NewManualClock(start), start: start,
		chip: analog.Chip, report: report,
	}
}

func testServer(t *testing.T) (http.Handler, *serveState) {
	t.Helper()
	st := testState(t, "")
	st.ready.Store(true)
	return newServer(st), st
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	srv, st := testServer(t)
	st.clock.(*obs.ManualClock).Advance(90 * time.Second)
	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"albireo_plcg_steps_total",
		"albireo_mzm_program_events_total",
		"albireo_sim_cycles_total",
		"albireo_sram_read_bytes_total",
		"albireo_cache_hits_total",
		"albireo_inference_layers_total",
		"albireo_bist_probes_total",
		"albireo_bist_scans_total",
		"albireo_inference_guard_checks_total",
		"albireo_serve_uptime_seconds 90",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	t.Parallel()
	srv, st := testServer(t)
	rec := get(t, srv, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.Events) != st.trace.Len() {
		t.Fatalf("endpoint returned %d events, trace holds %d", len(doc.Events), st.trace.Len())
	}
	if len(doc.Events) == 0 {
		t.Fatal("sweep should have produced trace events")
	}
}

func TestHealthzAndPprof(t *testing.T) {
	t.Parallel()
	srv, _ := testServer(t)
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("readyz: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof index: %d", rec.Code)
	}
	if rec := get(t, srv, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", rec.Code)
	}
}

func TestDegradedStateSurfaces(t *testing.T) {
	t.Parallel()
	// Start with a dead-tuned ring: BIST localizes it, quarantine takes
	// the unit down, and the probes report a degraded-but-serving chip.
	st := testState(t, "2,1,4,3,0.0")
	st.ready.Store(true)
	srv := newServer(st)

	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz must stay 200 (liveness), got %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "degraded") || !strings.Contains(body, "plcg2/plcu1") {
		t.Fatalf("healthz should report the quarantined unit: %q", body)
	}
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("readyz degraded: %d %q", rec.Code, rec.Body.String())
	}
	rec = get(t, srv, "/bist")
	var rep health.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bist JSON: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("bist report should carry the localized fault")
	}
	f := rep.Findings[0]
	if f.Unit.Group != 2 || f.Unit.Unit != 1 || f.Tap != 4 || f.Column != 3 {
		t.Fatalf("bist localization wrong: %+v", f)
	}
}

func TestReadyzNotReady(t *testing.T) {
	t.Parallel()
	st := testState(t, "")
	srv := newServer(st) // ready never stored: still starting up
	if rec := get(t, srv, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %d", rec.Code)
	}
}

func TestGracefulShutdown(t *testing.T) {
	t.Parallel()
	st := testState(t, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- serveGracefully(ctx, ln, newServer(st), 2*time.Second, &st.ready, &out)
	}()

	base := "http://" + ln.Addr().String()
	waitReady(t, base)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving: %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within the timeout")
	}
	if st.ready.Load() {
		t.Error("readiness must flip off during drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener should be closed after shutdown")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("shutdown log: %q", out.String())
	}
}

// waitReady polls the readiness endpoint until the server accepts
// connections (the Serve goroutine races the first request).
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never came up")
}

func TestRunNoListenPrintsMetrics(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-addr", "", "-sweeps", "1", "-batch", "1", "-size", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE albireo_plcg_steps_total counter") {
		t.Fatalf("stdout mode must print Prometheus metrics:\n%.400s", out)
	}
}

func TestRunBISTReportMode(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	args := []string{"-addr", "", "-sweeps", "0", "-bist", "-detune", "0,0,4,2,0.4"}
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The report JSON follows the quarantine log lines.
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output: %q", out)
	}
	var rep health.Report
	if err := json.Unmarshal([]byte(out[idx:]), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, out)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Tap != 4 || rep.Findings[0].Column != 2 {
		t.Fatalf("report findings: %+v", rep.Findings)
	}
	if !strings.Contains(out, "quarantined plcg0/plcu0") {
		t.Fatalf("startup should log the quarantine: %q", out)
	}
}

func TestRunFlagErrors(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-nonsense"},
		{"-addr", "", "-batch", "0"},
		{"-addr", "", "-size", "4"},
		{"-addr", "", "-sweeps", "-1"},
		{"-addr", "", "-budget", "0"},
		{"-addr", "", "-detune", "0,0"},
		{"-addr", "", "-detune", "0,0,4,2,1.5"},
		{"-addr", "", "-detune", "0,0,99,2,0.5"},
		{"-addr", "", "-detune", "0,0,4,99,0.5"},
		{"-addr", "", "-detune", "99,0,4,2,0.5"},
		{"-addr", "", "-detune", "0,0,4,2,0.5,-1"},
		{"-addr", "", "-detune", "x,0,4,2,0.5"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}

func TestSweepsAreDeterministic(t *testing.T) {
	t.Parallel()
	runOnce := func() obs.Snapshot {
		reg := obs.NewRegistry()
		trace := obs.NewTrace()
		cfg := core.DefaultConfig()
		cfg.Seed = 5
		analog := inference.NewAnalog(cfg)
		analog.Chip.Instrument(reg, trace)
		be := inference.Observe(inference.Guard(analog, inference.Exact{}, 0.5).Instrument(reg, trace), reg, trace)
		sweep(reg, trace, be, 2, 8, 5)
		return reg.Snapshot()
	}
	if a, b := runOnce(), runOnce(); !a.Equal(b) {
		t.Fatal("identical sweeps must produce bit-identical telemetry")
	}
}

// TestEndToEndDegradedServe drives run() itself against a real socket:
// inject a drifting fault, let run's BIST+quarantine pipeline handle
// it, then confirm the live endpoints report the degraded-but-serving
// state and the process exits cleanly on context cancel.
func TestEndToEndDegradedServe(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run() re-listens on the now-free port

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", addr, "-sweeps", "1", "-batch", "1", "-size", "8",
			"-detune", "0,0,4,2,0.0", "-drain", "2s",
		}, &out)
	}()

	base := "http://" + addr
	waitReady(t, base)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	if !strings.Contains(out.String(), "BIST quarantined plcg0/plcu0") {
		t.Errorf("startup log: %q", out.String())
	}
}
