// Command albireo-verify exercises the functional analog simulator
// end-to-end and prints a fidelity report: per-network logit
// correlation and top-1 agreement against the exact reference, the
// impairment ablation (ideal converters vs crosstalk vs noise), and a
// fault-injection study.
//
//	go run ./cmd/albireo-verify
//	go run ./cmd/albireo-verify -batch 32
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"albireo/internal/core"
	"albireo/internal/inference"
	"albireo/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-verify:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a single exit point: flag errors and
// invalid parameters come back as errors instead of mid-logic
// os.Exit calls, so tests can drive the tool end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-verify", flag.ContinueOnError)
	batch := fs.Int("batch", 16, "inputs per network")
	size := fs.Int("size", 16, "input spatial size")
	seed := fs.Int64("seed", 7, "weight/input seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("batch must be >= 1, got %d", *batch)
	}
	if *size < 8 {
		return fmt.Errorf("size must be >= 8, got %d", *size)
	}

	inputs := make([]*tensor.Volume, *batch)
	for i := range inputs {
		inputs[i] = tensor.RandomVolume(3, *size, *size, *seed*1000+int64(i))
	}

	nets := []*inference.Network{
		inference.TinyCNN(3, *size, *seed),
		inference.TinyMobile(3, *size, *seed+100),
		inference.TinyResNet(3, *size, *seed+200),
	}

	backends := []struct {
		name string
		b    inference.Backend
	}{
		{"ideal (converters only)", idealBackend()},
		{"crosstalk only", crosstalkBackend()},
		{"noise only", noiseBackend()},
		{"full impairments", inference.NewAnalog(core.DefaultConfig())},
	}

	exact := inference.Exact{}
	fmt.Fprintln(out, "end-to-end fidelity vs exact reference")
	fmt.Fprintf(out, "%-12s  %-24s  top-1  logit-corr\n", "network", "impairments")
	for _, net := range nets {
		for _, be := range backends {
			top1, corr := inference.Agreement(net, exact, be.b, inputs)
			fmt.Fprintf(out, "%-12s  %-24s  %5.2f  %10.4f\n", net.Name, be.name, top1, corr)
		}
	}

	// Fault injection: progressively kill switching rings in PLCG 0
	// and watch the network degrade.
	fmt.Fprintln(out, "\nfault injection (dead switching rings in PLCG 0, tiny-cnn):")
	fmt.Fprintln(out, "dead-rings  top-1  logit-corr")
	net := nets[0]
	for _, n := range []int{0, 1, 5, 15, 45} {
		be := inference.NewAnalog(core.DefaultConfig())
		injected := 0
		for tap := 0; tap < 9 && injected < n; tap++ {
			for col := 0; col < 5 && injected < n; col++ {
				if err := be.Chip.InjectFault(0, 0, core.Fault{Kind: core.DeadRing, Tap: tap, Column: col}); err != nil {
					return err
				}
				injected++
			}
		}
		top1, corr := inference.Agreement(net, exact, be, inputs)
		fmt.Fprintf(out, "%10d  %5.2f  %10.4f\n", injected, top1, corr)
	}
	return nil
}

func idealBackend() inference.Analog {
	cfg := core.DefaultConfig()
	cfg.DisableNoise = true
	cfg.DisableCrosstalk = true
	return inference.NewAnalog(cfg)
}

func crosstalkBackend() inference.Analog {
	cfg := core.DefaultConfig()
	cfg.DisableNoise = true
	return inference.NewAnalog(cfg)
}

func noiseBackend() inference.Analog {
	cfg := core.DefaultConfig()
	cfg.DisableCrosstalk = true
	return inference.NewAnalog(cfg)
}
