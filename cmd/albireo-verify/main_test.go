package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-nonsense"},
		{"-batch", "0"},
		{"-batch", "-3"},
		{"-size", "4"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v must error", args)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := run([]string{"-batch", "1", "-size", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"end-to-end fidelity",
		"fault injection",
		"full impairments",
		"tiny-cnn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
