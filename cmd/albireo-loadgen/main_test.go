package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyArgs keeps test sweeps fast: two rates, two pools, short window.
func tinyArgs(extra ...string) []string {
	args := []string{"-rates", "0.5,1.2", "-pools", "1,2", "-ticks", "150", "-seed", "9", "-queue", "16", "-batch", "4"}
	return append(args, extra...)
}

func TestSelftestDeterministic(t *testing.T) {
	t.Parallel()
	var a, b bytes.Buffer
	if err := run([]string{"-selftest"}, &a); err != nil {
		t.Fatalf("selftest: %v", err)
	}
	if err := run([]string{"-selftest"}, &b); err != nil {
		t.Fatalf("selftest again: %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("selftest output drifted:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "selftest ok") || !strings.Contains(a.String(), "sha256") {
		t.Fatalf("selftest output %q", a.String())
	}
}

// TestArtifactByteIdentical is the acceptance criterion: two runs with
// the same seed write byte-identical BENCH_serve.json files.
func TestArtifactByteIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	var out bytes.Buffer
	if err := run(tinyArgs("-json", p1), &out); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if err := run(tinyArgs("-json", p2), &out); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different artifacts")
	}
	if !strings.Contains(string(a), `"schema": "albireo-bench-serve/v1"`) {
		t.Fatalf("artifact missing schema:\n%s", a)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Fatal("artifact must end with a newline")
	}
}

// TestGatePassesAtBaselineAndFailsPastIt writes a baseline, re-runs
// against it (pass), then injects latency (fail).
func TestGatePassesAtBaselineAndFailsPastIt(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run(tinyArgs("-json", base), &out); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	out.Reset()
	if err := run(tinyArgs("-baseline", base), &out); err != nil {
		t.Fatalf("gate at baseline: %v", err)
	}
	if !strings.Contains(out.String(), "within p99 baseline") {
		t.Fatalf("gate output %q", out.String())
	}
	err := run(tinyArgs("-baseline", base, "-extra-latency", "4"), &out)
	if err == nil || !strings.Contains(err.Error(), "p99 latency regression") {
		t.Fatalf("gate with injected latency: err = %v, want p99 regression", err)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-rates", "abc"},
		{"-rates", "-1"},
		{"-pools", "0"},
		{"-pools", "x,y"},
		{"-baseline", filepath.Join(t.TempDir(), "missing.json")},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestReportTableRendered checks the human-facing summary has one row
// per (pool, rate) cell plus the default sharded scale-out points.
func TestReportTableRendered(t *testing.T) {
	t.Parallel()
	var out bytes.Buffer
	if err := run(tinyArgs(), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+4+3 { // header + 2 pools x 2 rates + 3 shard pools
		t.Fatalf("table = %d lines, want 8:\n%s", len(lines), out.String())
	}
	var shard int
	for _, l := range lines {
		if strings.Contains(l, "shard") {
			shard++
		}
	}
	if shard != 3 {
		t.Fatalf("table has %d shard rows, want 3:\n%s", shard, out.String())
	}
	out.Reset()
	if err := run(tinyArgs("-shard-pools", ""), &out); err != nil {
		t.Fatalf("run without shard points: %v", err)
	}
	lines = strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+4 { // empty -shard-pools skips the scale-out rows
		t.Fatalf("table without shard points = %d lines, want 5:\n%s", len(lines), out.String())
	}
}
