// Command albireo-loadgen is the open-loop tail-latency harness: it
// sweeps offered load (Poisson arrivals, seeded) across fleet pool
// sizes, measures every request's per-stage latency decomposition in
// virtual time, and emits BENCH_serve.json - p50/p90/p99/p999,
// achieved vs offered rate, shed fraction, and the stage breakdown
// per (pool, rate) point.
//
// Virtual time is what makes the artifact gateable: the fleet prices
// service in linger ticks (fleet.ServiceModel), so the whole report
// is a pure function of its flags and two runs with the same seed are
// byte-identical. check.sh runs the sweep every build and fails when
// a point's p99 regresses past the committed bench_serve_baseline.json
// (mirroring the allocs/op gate); -extra-latency exists to prove the
// gate trips.
//
// Usage:
//
//	albireo-loadgen -json BENCH_serve.json -baseline bench_serve_baseline.json
//	albireo-loadgen -rates 0.2,0.8,1.1 -pools 1,2 -ticks 400
//	albireo-loadgen -selftest               # determinism smoke: run twice, compare, hash
//	albireo-loadgen -http http://127.0.0.1:8080/v1/infer -http-rate 50
//
// The -http mode drives a live albireo-serve endpoint in wall time
// through the injected clock; it explores a deployment and is never
// gated.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"albireo/internal/fleet"
	"albireo/internal/load"
	"albireo/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-loadgen:", err)
		os.Exit(1)
	}
}

// sweepConfig is everything a deterministic sweep depends on.
type sweepConfig struct {
	rates        []float64
	pools        []int
	ticks        int
	seed         int64
	queue        int
	batch        int
	linger       int
	programTicks int64
	requestTicks int64
	// Sharded scale-out points: a low-rate single-inference workload
	// whose kernel groups fan out across each pool size, priced at
	// shardRequestTicks steady state.
	shardPools        []int
	shardRate         float64
	shardRequestTicks int64
}

// run is the whole tool behind a single exit point so tests can drive
// it end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-loadgen", flag.ContinueOnError)
	rates := fs.String("rates", "0.2,0.5,0.8,1.1", "offered rates to sweep, in requests per tick (comma-separated)")
	pools := fs.String("pools", "1,2", "fleet pool sizes to sweep (comma-separated)")
	ticks := fs.Int("ticks", 400, "arrival window per point, in ticks")
	seed := fs.Int64("seed", 1, "arrival-process and workload seed")
	queue := fs.Int("queue", 64, "admission queue depth; offered load past capacity sheds")
	batch := fs.Int("batch", 8, "max requests coalesced into one micro-batch")
	linger := fs.Int("linger", 2, "max ticks a partial batch lingers for more compatible requests")
	programTicks := fs.Int64("program-ticks", 2, "virtual service ticks charged once per batch (MZM weight programming)")
	requestTicks := fs.Int64("request-ticks", 1, "virtual service ticks charged per request in a batch")
	extraLatency := fs.Int64("extra-latency", 0, "extra per-request service ticks; injects a deliberate regression to prove the gate trips")
	shardPools := fs.String("shard-pools", "1,2,4", `pool sizes for the sharded scale-out points; "" skips them`)
	shardRate := fs.Float64("shard-rate", 0.02, "offered rate for the sharded points: low enough that each inference's latency is its own, not queueing")
	shardRequestTicks := fs.Int64("shard-request-ticks", 18, "steady-state service ticks of the sharded points' single inference (split across the owned kernel-group fraction)")
	jsonPath := fs.String("json", "", "write BENCH_serve.json to this file")
	baseline := fs.String("baseline", "", "baseline JSON; fail if any point's p99 regresses past it")
	slack := fs.Float64("p99-slack", 0.15, "fractional p99 headroom over the baseline (plus 1 tick absolute) before failing")
	selftest := fs.Bool("selftest", false, "determinism smoke: run a fixed tiny sweep twice, require byte-identical artifacts, print their hash")
	httpURL := fs.String("http", "", "drive a live /v1/infer endpoint in wall time instead of the virtual-time fleet")
	httpRate := fs.Float64("http-rate", 20, "offered rate for -http, in requests per second")
	httpDur := fs.Duration("http-duration", 2*time.Second, "arrival window for -http")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selftest {
		return runSelftest(out)
	}
	if *httpURL != "" {
		res, err := load.RunHTTP(context.Background(), load.HTTPConfig{
			URL:      *httpURL,
			Rate:     *httpRate,
			Duration: *httpDur,
			Seed:     *seed,
			Clock:    obs.WallClock{},
		})
		if err != nil {
			return err
		}
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", raw)
		return err
	}

	cfg := sweepConfig{
		ticks: *ticks, seed: *seed, queue: *queue, batch: *batch, linger: *linger,
		programTicks: *programTicks, requestTicks: *requestTicks + *extraLatency,
		shardRate: *shardRate, shardRequestTicks: *shardRequestTicks + *extraLatency,
	}
	var err error
	if cfg.rates, err = parseFloats(*rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	if cfg.pools, err = parseInts(*pools); err != nil {
		return fmt.Errorf("-pools: %w", err)
	}
	if *shardPools != "" {
		if cfg.shardPools, err = parseInts(*shardPools); err != nil {
			return fmt.Errorf("-shard-pools: %w", err)
		}
	}

	rep, err := sweep(cfg)
	if err != nil {
		return err
	}
	printReport(out, rep)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, rep); err != nil {
			return err
		}
	}
	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			return err
		}
		return load.Gate(out, rep, base, *slack)
	}
	return nil
}

// sweep measures every (pool, rate) point of the grid.
func sweep(cfg sweepConfig) (load.Report, error) {
	rep := load.Report{
		Schema:       load.ReportSchema,
		Seed:         cfg.seed,
		QueueDepth:   cfg.queue,
		MaxBatch:     cfg.batch,
		MaxLinger:    cfg.linger,
		ProgramTicks: cfg.programTicks,
		RequestTicks: cfg.requestTicks,
	}
	for _, pool := range cfg.pools {
		for _, rate := range cfg.rates {
			res, err := load.RunPoint(
				load.Config{Rate: rate, Ticks: cfg.ticks, Seed: cfg.seed},
				fleet.Options{
					MaxBatch:   cfg.batch,
					MaxLinger:  cfg.linger,
					QueueDepth: cfg.queue,
					ServiceModel: fleet.ServiceModel{
						ProgramTicks: cfg.programTicks,
						RequestTicks: cfg.requestTicks,
					},
				},
				load.NullUnits(pool)...)
			if err != nil {
				return load.Report{}, fmt.Errorf("pool %d rate %g: %w", pool, rate, err)
			}
			rep.Points = append(rep.Points, load.BuildPoint(pool, rate, res))
		}
	}
	// Sharded scale-out points: one low-rate workload per pool size,
	// fanned out at the kernel-group boundary. Pool 1 cannot fan out
	// and serves whole - it is the in-report baseline the multi-chip
	// points are read against.
	if len(cfg.shardPools) > 0 {
		rep.ShardRequestTicks = cfg.shardRequestTicks
	}
	for _, pool := range cfg.shardPools {
		res, err := load.RunPoint(
			load.Config{Rate: cfg.shardRate, Ticks: cfg.ticks, Seed: cfg.seed, Shard: true, KernelM: 36},
			fleet.Options{
				MaxBatch:   cfg.batch,
				MaxLinger:  cfg.linger,
				QueueDepth: cfg.queue,
				ServiceModel: fleet.ServiceModel{
					ProgramTicks: cfg.programTicks,
					RequestTicks: cfg.shardRequestTicks,
				},
			},
			load.NullUnits(pool)...)
		if err != nil {
			return load.Report{}, fmt.Errorf("shard pool %d rate %g: %w", pool, cfg.shardRate, err)
		}
		pt := load.BuildPoint(pool, cfg.shardRate, res)
		pt.Shard = true
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// printReport renders the throughput-latency table. Sharded
// scale-out points carry a "shard" mode marker: their E2E is
// single-inference latency across the pool, not batched throughput.
func printReport(out io.Writer, rep load.Report) {
	fmt.Fprintf(out, "%-6s %-6s %-8s %-9s %-6s %7s %7s %7s %7s %7s\n",
		"pool", "mode", "offered", "achieved", "shed%", "p50", "p90", "p99", "p999", "max")
	for _, p := range rep.Points {
		mode := "whole"
		if p.Shard {
			mode = "shard"
		}
		fmt.Fprintf(out, "%-6d %-6s %-8g %-9.3f %-6.1f %7.0f %7.0f %7.0f %7.0f %7.0f\n",
			p.Pool, mode, p.OfferedRate, p.AchievedRate, 100*p.ShedFraction,
			p.E2E.P50, p.E2E.P90, p.E2E.P99, p.E2E.P999, p.E2E.Max)
	}
}

// selftestConfig is the pinned tiny sweep the CI smoke step runs.
var selftestConfig = sweepConfig{
	rates: []float64{0.5, 1.2}, pools: []int{1, 2},
	ticks: 200, seed: 12345, queue: 32, batch: 4, linger: 2,
	programTicks: 2, requestTicks: 1,
	shardPools: []int{1, 4}, shardRate: 0.02, shardRequestTicks: 18,
}

// runSelftest runs the pinned sweep twice and requires byte-identical
// artifacts - the determinism the baseline gate stands on - then
// prints the artifact's hash so drift across commits is visible in CI
// logs.
func runSelftest(out io.Writer) error {
	var artifacts [2][]byte
	for i := range artifacts {
		rep, err := sweep(selftestConfig)
		if err != nil {
			return fmt.Errorf("selftest sweep %d: %w", i+1, err)
		}
		raw, err := marshalReport(rep)
		if err != nil {
			return err
		}
		artifacts[i] = raw
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		return fmt.Errorf("selftest: two identically seeded sweeps produced different artifacts")
	}
	fmt.Fprintf(out, "selftest ok: 2 runs byte-identical, sha256 %x\n", sha256.Sum256(artifacts[0]))
	return nil
}

// parseFloats parses a comma-separated list of positive floats.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("%g is not positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("%d is not positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// marshalReport renders the artifact with a trailing newline, so it
// diffs cleanly when committed as the baseline.
func marshalReport(rep load.Report) ([]byte, error) {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// writeJSON writes the artifact file.
func writeJSON(path string, rep load.Report) error {
	raw, err := marshalReport(rep)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// readReport loads a committed report.
func readReport(path string) (load.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return load.Report{}, err
	}
	var rep load.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return load.Report{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return rep, nil
}
