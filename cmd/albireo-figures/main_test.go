package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-only", "table1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "==== table1 ====") {
		t.Errorf("output missing table1 header:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-only", "fig999"}, &out); err == nil {
		t.Fatal("want error for unknown experiment, got nil")
	}
}
