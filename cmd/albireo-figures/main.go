// Command albireo-figures regenerates every table and figure of the
// paper's evaluation from the simulator.
//
// Usage:
//
//	albireo-figures              # print everything
//	albireo-figures -only fig8   # one experiment: fig3, fig4a, fig4b,
//	                             # fig4c, fig8, fig9, table1..table4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"albireo/internal/core"
	"albireo/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-figures:", err)
		os.Exit(1)
	}
}

// run generates the requested experiments to out, returning an error
// (instead of exiting mid-logic) for unknown names or JSON failures.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-figures", flag.ContinueOnError)
	only := fs.String("only", "", "regenerate a single experiment (fig3, fig4a, fig4b, fig4c, fig8, fig9, table1..table4, dataflow, energy, link, feasibility, bitwidth, gemmquant)")
	jsonOut := fs.Bool("json", false, "dump every experiment's structured rows as JSON instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *jsonOut {
		return experiments.WriteJSON(out, experiments.CollectDataset())
	}

	gens := []struct {
		name string
		run  func() string
	}{
		{"table1", experiments.FormatTableI},
		{"table2", experiments.FormatTableII},
		{"fig3", func() string {
			return experiments.FormatFig3(experiments.Fig3(experiments.DefaultFig3Params()))
		}},
		{"fig4a", func() string {
			return experiments.FormatFig4a([]float64{0.02, 0.03, 0.05, 0.1})
		}},
		{"fig4b", func() string {
			return experiments.FormatFig4b(experiments.Fig4b(
				[]float64{0.02, 0.03, 0.05},
				[]float64{5e9, 10e9, 20e9, 40e9}))
		}},
		{"fig4c", func() string {
			return experiments.FormatFig4c(experiments.Fig4c([]float64{0.02, 0.03, 0.05}, 40))
		}},
		{"table3", func() string { return experiments.FormatTableIII(core.DefaultConfig()) }},
		{"fig8", func() string { return experiments.FormatFig8(experiments.Fig8()) }},
		{"fig9", func() string { return experiments.FormatFig9(experiments.Fig9(core.DefaultConfig())) }},
		{"table4", func() string { return experiments.FormatTableIV(experiments.TableIV()) }},
		// Beyond-the-paper analyses (EXPERIMENTS.md).
		{"dataflow", func() string { return experiments.FormatDataflow(experiments.DataflowComparison()) }},
		{"energy", func() string { return experiments.FormatEnergy(experiments.EnergyRefinement()) }},
		{"link", experiments.FormatLink},
		{"feasibility", func() string { return experiments.FormatFeasibility(experiments.FeasibilityReport()) }},
		{"bitwidth", func() string {
			return experiments.FormatBitwidth(experiments.BitwidthSweep([]int{3, 4, 5, 6, 8, 10}, 60))
		}},
		{"gemmquant", func() string {
			return experiments.FormatGEMMQuant(experiments.GEMMQuantSweep([]int{2, 3, 4, 5, 6, 8, 10}, 64))
		}},
	}

	found := false
	for _, g := range gens {
		if *only != "" && g.name != *only {
			continue
		}
		found = true
		fmt.Fprintf(out, "==== %s ====\n%s\n", g.name, g.run())
	}
	if !found {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}
