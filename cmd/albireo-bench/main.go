// Command albireo-bench turns `go test -bench -benchmem` output into
// a machine-readable JSON artifact and gates allocation regressions on
// the analog hot path.
//
// The zero-allocation contract (internal/core/alloc_test.go) is
// enforced per function by AllocsPerRun; this tool enforces it per
// benchmark at the CI boundary: check.sh pipes the hot benchmarks
// through it, archives the JSON, and fails the build when a
// benchmark's allocs/op grows past the committed baseline. Only
// allocs/op is gated - it is deterministic at a fixed -benchtime=Nx,
// while ns/op on shared CI hardware is too noisy to gate and is
// reported for trending only.
//
// Usage:
//
//	go test -run '^$' -bench Functional -benchmem -benchtime 50x . |
//	    albireo-bench -json BENCH_core.json -baseline bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-bench:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix, e.g.
	// "BenchmarkFunctionalConv" or "BenchmarkFleetInfer/pool2".
	Name string `json:"name"`
	// Iterations is the b.N of the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration (reported, never gated).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes per iteration (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per iteration (-benchmem); the
	// gated quantity.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the JSON artifact schema, shared by BENCH_core.json and
// the committed baseline.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-bench", flag.ContinueOnError)
	inPath := fs.String("in", "-", "benchmark output to parse (- for stdin)")
	jsonPath := fs.String("json", "", "write the parsed results as JSON to this file")
	baseline := fs.String("baseline", "", "baseline JSON; fail if any baseline benchmark's allocs/op regresses")
	slack := fs.Float64("alloc-slack", 0.10, "fractional allocs/op headroom over the baseline (plus 1 absolute) before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, rep); err != nil {
			return err
		}
	}
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(out, "%-44s %12.0f ns/op %10.0f B/op %8.1f allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if *baseline != "" {
		return gate(out, rep, *baseline, *slack)
	}
	return nil
}

// parse extracts benchmark result lines from go test output. Lines it
// does not recognize (headers, PASS, custom metrics it has no column
// for) are skipped, so the tool can consume a raw `go test` stream.
func parse(in io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	return rep, nil
}

// trimProcSuffix drops the trailing -GOMAXPROCS decoration go test
// appends to benchmark names, so names are stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// writeJSON writes the report with stable ordering and a trailing
// newline, so the artifact diffs cleanly when committed.
func writeJSON(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gate compares measured allocs/op against the committed baseline.
// Every baseline benchmark must be present in the measurement, and
// each may exceed its baseline allocs/op by at most slack (fractional)
// plus 1 absolute - enough headroom for runtime jitter at small
// counts, while still catching any real per-tile allocation leak
// (which costs thousands of allocs/op, not one).
func gate(out io.Writer, rep *Report, baselinePath string, slack float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	measured := make(map[string]Result, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		measured[r.Name] = r
	}
	var failures []string
	for _, b := range base.Benchmarks {
		m, ok := measured[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not measured", b.Name))
			continue
		}
		limit := b.AllocsPerOp*(1+slack) + 1
		if m.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op exceeds baseline %.1f (limit %.1f)",
				b.Name, m.AllocsPerOp, b.AllocsPerOp, limit))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "alloc gate: %d benchmarks within baseline\n", len(base.Benchmarks))
	return nil
}
