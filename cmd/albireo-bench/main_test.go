package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: albireo
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFunctionalConv-4         	     300	   1377246 ns/op	    8248 B/op	       2 allocs/op
BenchmarkFunctionalPLCUStep-4     	  936718	      1174 ns/op	      48 B/op	       1 allocs/op
BenchmarkFleetInfer/pool2-4       	     300	   3482186 ns/op	   31897 B/op	      22 allocs/op
BenchmarkFig9Area-4               	   10000	    100000 ns/op
PASS
ok  	albireo	3.712s
`

func TestParse(t *testing.T) {
	t.Parallel()
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Sorted by name, proc suffix trimmed.
	if rep.Benchmarks[0].Name != "BenchmarkFig9Area" {
		t.Errorf("first benchmark = %q, want BenchmarkFig9Area", rep.Benchmarks[0].Name)
	}
	var conv *Result
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == "BenchmarkFunctionalConv" {
			conv = &rep.Benchmarks[i]
		}
	}
	if conv == nil {
		t.Fatal("BenchmarkFunctionalConv not parsed")
	}
	if conv.Iterations != 300 || conv.NsPerOp != 1377246 || conv.BytesPerOp != 8248 || conv.AllocsPerOp != 2 {
		t.Errorf("FunctionalConv parsed as %+v", *conv)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"BenchmarkFunctionalConv-4":   "BenchmarkFunctionalConv",
		"BenchmarkFleetInfer/pool2-8": "BenchmarkFleetInfer/pool2",
		"BenchmarkNoSuffix":           "BenchmarkNoSuffix",
		"BenchmarkAblation-K2-4":      "BenchmarkAblation-K2",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// writeSample runs the tool over the sample input, writing JSON to a
// temp file, and returns the path plus the run error.
func runTool(t *testing.T, extra ...string) (string, string, error) {
	t.Helper()
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_core.json")
	args := append([]string{"-json", jsonPath}, extra...)
	var out strings.Builder
	err := run(args, strings.NewReader(sample), &out)
	return jsonPath, out.String(), err
}

func TestRunWritesJSON(t *testing.T) {
	t.Parallel()
	jsonPath, out, err := runTool(t)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read JSON: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Errorf("JSON has %d benchmarks, want 4", len(rep.Benchmarks))
	}
	if !strings.Contains(out, "BenchmarkFunctionalConv") {
		t.Errorf("summary output missing FunctionalConv:\n%s", out)
	}
}

// writeBaseline commits a baseline file with the given allocs/op for
// BenchmarkFunctionalConv.
func writeBaseline(t *testing.T, allocs float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	rep := Report{Benchmarks: []Result{{Name: "BenchmarkFunctionalConv", AllocsPerOp: allocs}}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePasses(t *testing.T) {
	t.Parallel()
	base := writeBaseline(t, 2) // measured 2 allocs/op == baseline
	if _, out, err := runTool(t, "-baseline", base); err != nil {
		t.Fatalf("gate failed on matching baseline: %v\n%s", err, out)
	}
}

func TestGateCatchesRegression(t *testing.T) {
	t.Parallel()
	base := writeBaseline(t, 0) // limit 0*1.1+1 = 1 < measured 2
	_, _, err := runTool(t, "-baseline", base)
	if err == nil || !strings.Contains(err.Error(), "allocation regression") {
		t.Fatalf("gate passed a regression (err=%v)", err)
	}
}

func TestGateCatchesMissingBenchmark(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "baseline.json")
	rep := Report{Benchmarks: []Result{{Name: "BenchmarkGone", AllocsPerOp: 1}}}
	data, _ := json.Marshal(rep)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := runTool(t, "-baseline", path)
	if err == nil || !strings.Contains(err.Error(), "not measured") {
		t.Fatalf("gate passed with a baseline benchmark missing (err=%v)", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}
