// Command albireo-replay re-executes a hash-chained request journal
// (written by albireo-serve -journal) against a freshly built pool and
// verifies the serving history bit-for-bit.
//
// Two modes:
//
//	albireo-replay -journal DIR -verify   # chain verification only
//	albireo-replay -journal DIR           # full re-execution
//
// -verify walks every segment, re-checks every frame CRC, and
// re-derives the hash chain record by record; any corruption before
// the torn tail fails with the corrupted sequence number. The full
// mode additionally rebuilds the pool from the journal header (same
// pool size, seeds, accuracy budget, and fault injection the recorded
// run used), reproduces the startup BIST scans, and re-executes every
// delivered request on the worker that originally served it - in
// journal order, which preserves each worker's recorded op sequence
// and with it the chip's program, cycle, and drift state - comparing
// every output hash against the recorded one. The first divergence is
// reported with its sequence number and the process exits nonzero.
//
// -extra-detune injects additional faults into worker 0 on top of the
// header's, which makes the rebuilt pool deliberately differ from the
// recorded one - the knob the divergence-detection tests (and skeptics
// of the determinism claim) use.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"albireo/internal/fleet"
	"albireo/internal/health"
	"albireo/internal/journal"
	"albireo/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-replay:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a single exit point so tests can drive
// it end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-replay", flag.ContinueOnError)
	dir := fs.String("journal", "", "journal directory to replay (required)")
	verify := fs.Bool("verify", false, "verify the chain (CRCs + hash chain) without re-executing")
	extraDetune := fs.String("extra-detune", "", "inject extra worker-0 faults on top of the header's (forces divergence; for testing the detector)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-journal DIR is required")
	}

	if *verify {
		snap, err := journal.Verify(*dir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "albireo-replay: chain verified: %d record(s), head seq %d, %d torn byte(s)\n",
			snap.Count, snap.LastSeq, snap.TornBytes)
		fmt.Fprintf(out, "albireo-replay: head hash %x\n", snap.Head)
		return nil
	}

	snap, err := journal.Read(*dir)
	if err != nil {
		return err
	}
	hdr := snap.Header
	spec := fleet.PoolSpec{
		Pool:         int(hdr.Pool),
		Seed:         hdr.Seed,
		Budget:       hdr.Budget,
		Detune:       hdr.Detune,
		KeepDegraded: hdr.KeepDegraded,
	}
	if *extraDetune != "" {
		if spec.Detune != "" {
			spec.Detune += ";"
		}
		spec.Detune += *extraDetune
	}
	fmt.Fprintf(out, "albireo-replay: rebuilding pool %d (seed %d, budget %g, detune %q)\n",
		spec.Pool, spec.Seed, spec.Budget, spec.Detune)

	// The rebuilt pool runs uninstrumented: replay verifies output
	// bits, and the recorded run's metrics are already in the journal's
	// sidecar telemetry, not re-derivable anyway (wall-driven batching
	// differs run to run).
	units, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		return err
	}
	fleet.StartupScan(units, health.Options{})

	res, err := journal.Replay(snap, &fleet.JournalExecutor{Units: units})
	if d, ok := journal.AsDivergence(err); ok {
		fmt.Fprintf(out, "albireo-replay: DIVERGED at seq %d (admit %d, worker %d) after %d verified request(s)\n",
			d.Seq, d.Admit, d.Worker, res.Verified)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "albireo-replay: %d/%d delivered request(s) verified bit-for-bit (admits %d, sheds %d, cancels %d, fallbacks %d, probes %d, restarts %d)\n",
		res.Verified, res.Delivers, res.Admits, res.Sheds, res.Cancels, res.Fallbacks, res.Probes, res.Restarts)
	return nil
}
