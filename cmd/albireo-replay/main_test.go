package main

import (
	"context"
	"io"
	"strings"
	"testing"

	"albireo/internal/fleet"
	"albireo/internal/journal"
	"albireo/internal/obs"
)

// recordJournal serves a short seeded run with journaling on and
// returns the journal directory, writer left un-Closed (crash
// simulation: recovery and replay must need nothing from it).
func recordJournal(t *testing.T) string {
	t.Helper()
	spec := fleet.PoolSpec{Pool: 2, Seed: 7, Budget: 100, Detune: "0,0,4,2,0.4", KeepDegraded: true}
	hdr := journal.Header{
		Pool: int64(spec.Pool), Seed: spec.Seed, Size: 8,
		Budget: spec.Budget, KeepDegraded: spec.KeepDegraded, Detune: spec.Detune,
	}
	dir := t.TempDir()
	w, err := journal.Create(dir, hdr, journal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a := journal.NewAsync(w, 0)
	a.Start()

	units, _, err := fleet.BuildUnits(spec, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatalf("BuildUnits: %v", err)
	}
	s, err := fleet.New(fleet.Options{QueueDepth: 32, KeepDegraded: true, Journal: a}, units...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx := context.Background()
	if err := fleet.Sweep(ctx, obs.NewRegistry(), nil, s.Bind(ctx), 2, int(hdr.Size), 7); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	a.Drain()
	return dir
}

func TestReplayVerifyAndFull(t *testing.T) {
	t.Parallel()
	dir := recordJournal(t)

	var vout strings.Builder
	if err := run([]string{"-journal", dir, "-verify"}, &vout); err != nil {
		t.Fatalf("verify mode: %v", err)
	}
	if !strings.Contains(vout.String(), "chain verified") || !strings.Contains(vout.String(), "head hash") {
		t.Fatalf("verify output: %q", vout.String())
	}

	var fout strings.Builder
	if err := run([]string{"-journal", dir}, &fout); err != nil {
		t.Fatalf("full replay: %v", err)
	}
	out := fout.String()
	if !strings.Contains(out, "verified bit-for-bit") {
		t.Fatalf("replay output: %q", out)
	}
	if strings.Contains(out, "0/0 delivered") {
		t.Fatalf("replay verified nothing: %q", out)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	t.Parallel()
	dir := recordJournal(t)
	var out strings.Builder
	err := run([]string{"-journal", dir, "-extra-detune", "0,1,3,1,0.3"}, &out)
	if err == nil {
		t.Fatal("perturbed replay must fail")
	}
	if _, ok := journal.AsDivergence(err); !ok {
		t.Fatalf("perturbed replay error = %v, want *Divergence", err)
	}
	if !strings.Contains(out.String(), "DIVERGED at seq") {
		t.Fatalf("divergence output: %q", out.String())
	}
}

func TestReplayFlagErrors(t *testing.T) {
	t.Parallel()
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("missing -journal must error")
	}
	if err := run([]string{"-journal", t.TempDir()}, io.Discard); err == nil {
		t.Fatal("empty journal dir must error")
	}
}
