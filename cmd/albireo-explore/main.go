// Command albireo-explore sweeps the Albireo design space: the MRR
// coupling coefficient k^2 (Section II-C), the PLCU/PLCG dimensions
// (Nd, Nu, Ng), and the FC mapping - the ablations DESIGN.md calls
// out.
//
// Usage:
//
//	albireo-explore -sweep k2
//	albireo-explore -sweep nd -model VGG16
//	albireo-explore -sweep ng
//	albireo-explore -sweep fc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"albireo/internal/circuit"
	"albireo/internal/core"
	"albireo/internal/nn"
	"albireo/internal/perf"
	"albireo/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-explore:", err)
		os.Exit(1)
	}
}

// run dispatches the requested sweep, reporting unknown models or
// sweeps as errors so main keeps the single exit point.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-explore", flag.ContinueOnError)
	sweep := fs.String("sweep", "k2", "design sweep: k2, nd, nu, ng, fc, dataflow, energy, scaleout")
	modelName := fs.String("model", "VGG16", "benchmark model for architectural sweeps")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, ok := nn.ByName(*modelName)
	if !ok {
		return fmt.Errorf("unknown model %q", *modelName)
	}

	switch *sweep {
	case "k2":
		sweepK2(out)
	case "nd":
		sweepNd(out, model)
	case "nu":
		sweepNu(out, model)
	case "ng":
		sweepNg(out, model)
	case "fc":
		sweepFC(out, model)
	case "dataflow":
		sweepDataflow(out, model)
	case "energy":
		sweepEnergy(out, model)
	case "scaleout":
		sweepScaleOut(out, model)
	default:
		return fmt.Errorf("unknown sweep %q", *sweep)
	}
	return nil
}

func sweepDataflow(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "dataflow ablation on %s (Section III-B):\n", model.Name)
	df, ws := sim.Compare(core.DefaultConfig(), model)
	fmt.Fprintln(out, "dataflow           cycles      SRAM-traffic(MB)  movement-energy(uJ)")
	fmt.Fprintf(out, "%-17s  %-10d  %16.2f  %19.2f\n", "depth-first", df.Cycles,
		float64(df.Traffic)/1e6, df.SRAMEnergy*1e6)
	fmt.Fprintf(out, "%-17s  %-10d  %16.2f  %19.2f\n", "weight-stationary", ws.Cycles,
		float64(ws.Traffic)/1e6, ws.SRAMEnergy*1e6)
	fmt.Fprintln(out, "\nthe PLCG's depth-first aggregation creates no partial-sum")
	fmt.Fprintln(out, "writes; the weight-stationary alternative pays for every spill.")
}

func sweepScaleOut(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "multi-chip strong scaling on %s:\n", model.Name)
	fmt.Fprintln(out, "chips   latency(ms)  power(W)  energy(mJ)   EDP(mJ*ms)  efficiency")
	curve := perf.ScaleOutCurve(core.DefaultConfig(), model, 8)
	base := curve[0].Latency
	for i, r := range curve {
		eff := base / r.Latency / float64(i+1)
		fmt.Fprintf(out, "%5d   %11.4f  %8.1f  %10.3f  %11.4f  %9.2f\n",
			i+1, r.Latency*1e3, r.Power, r.Energy*1e3, r.EDP*1e6, eff)
	}
}

func sweepEnergy(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "energy accounting refinement on %s:\n", model.Name)
	eb := perf.EvaluateEnergy(core.DefaultConfig(), model)
	fmt.Fprintf(out, "flat (paper-style, power x latency):  %8.3f mJ\n", eb.Flat*1e3)
	fmt.Fprintf(out, "with idle-PLCG power gating:          %8.3f mJ\n", eb.Gated*1e3)
	fmt.Fprintf(out, "explicit SRAM data movement:          %8.4f mJ\n", eb.SRAM*1e3)
	fmt.Fprintf(out, "refined total:                        %8.3f mJ (%.1f%% below flat)\n",
		eb.Total()*1e3, eb.Savings()*100)
}

func sweepK2(out io.Writer) {
	fmt.Fprintln(out, "MRR k^2 design space at 21 wavelengths (the PLCU grid):")
	fmt.Fprintln(out, "  k^2    bits  bits(diff)  eye@5GHz  rise(ps)")
	for _, k2 := range []float64{0.01, 0.02, 0.03, 0.05, 0.08, 0.12} {
		xa := circuit.NewCrosstalkAnalysis(k2, 21)
		tr := circuit.NewTemporalResponse(k2, 5e9)
		fmt.Fprintf(out, "%6.3f  %5.2f  %10.2f  %8.3f  %8.1f\n",
			k2, xa.PrecisionBits(), xa.DifferentialPrecisionBits(),
			tr.EyeOpening(), 2.2*tr.Ring.PhotonLifetime()*1e12)
	}
	fmt.Fprintln(out, "\nthe paper picks k^2 = 0.03: >= 7 differential bits at 21")
	fmt.Fprintln(out, "wavelengths with healthy 5 GHz temporal response.")
}

func report(out io.Writer, cfg core.Config, model nn.Model, label string) {
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(out, "%-14s  invalid: %v\n", label, err)
		return
	}
	r := perf.Evaluate(cfg, model)
	fmt.Fprintf(out, "%-14s  %9.4f ms  %8.2f W  %9.3f mJ  %10.4f mJ*ms  %4d lambda\n",
		label, r.Latency*1e3, r.Power, r.Energy*1e3, r.EDP*1e6,
		cfg.TotalWavelengths())
}

func sweepNd(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "Nd sweep (receptive-field parallelism) on %s:\n", model.Name)
	fmt.Fprintln(out, "design          latency       power     energy       EDP            WDM")
	for _, nd := range []int{1, 3, 5, 7, 9} {
		cfg := core.DefaultConfig()
		cfg.Nd = nd
		report(out, cfg, model, fmt.Sprintf("Nd=%d", nd))
	}
	fmt.Fprintln(out, "\nlarger Nd means more wavelengths per PLCU and lower crosstalk-")
	fmt.Fprintln(out, "limited precision; the paper settles on Nd=5 (21 wavelengths).")
}

func sweepNu(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "Nu sweep (channels per PLCG) on %s:\n", model.Name)
	fmt.Fprintln(out, "design          latency       power     energy       EDP            WDM")
	for _, nu := range []int{1, 2, 3, 4, 6} {
		cfg := core.DefaultConfig()
		cfg.Nu = nu
		label := fmt.Sprintf("Nu=%d", nu)
		if cfg.TotalWavelengths() > 64 {
			label += "*"
		}
		report(out, cfg, model, label)
	}
	fmt.Fprintln(out, "\n* exceeds the 64-wavelength distribution budget (Section III-B).")
}

func sweepNg(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "Ng sweep (kernel parallelism / chip scaling) on %s:\n", model.Name)
	fmt.Fprintln(out, "design          latency       power     energy       EDP            WDM")
	for _, ng := range []int{3, 9, 18, 27, 54} {
		cfg := core.DefaultConfig()
		cfg.Ng = ng
		report(out, cfg, model, fmt.Sprintf("Ng=%d", ng))
	}
	fmt.Fprintln(out, "\nthe paper evaluates Ng=9 (22.7 W) and the 60 W-budget Ng=27.")
}

func sweepFC(out io.Writer, model nn.Model) {
	fmt.Fprintf(out, "FC mapping ablation on %s:\n", model.Name)
	fmt.Fprintln(out, "design          latency       power     energy       EDP            WDM")
	wide := core.DefaultConfig()
	narrow := core.DefaultConfig()
	narrow.FCWide = false
	report(out, wide, model, "FC wide")
	report(out, narrow, model, "FC narrow")
	fmt.Fprintln(out, "\nthe paper's prose describes the narrow mapping but its AlexNet")
	fmt.Fprintln(out, "latency matches the wide one; see DESIGN.md and EXPERIMENTS.md.")
}
