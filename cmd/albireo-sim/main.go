// Command albireo-sim runs the per-layer performance analysis of a
// CNN on an Albireo design (paper Section IV-A: "We perform a
// per-layer analysis to yield latency, energy, and EDP").
//
// Usage:
//
//	albireo-sim -model VGG16 -estimate C -ng 9
//	albireo-sim -model MobileNet -estimate A -ng 27 -layers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "albireo-sim:", err)
		os.Exit(1)
	}
}

// run is the whole tool behind a single exit point: flag errors and
// invalid configurations come back as errors instead of mid-logic
// os.Exit calls, so tests can drive the tool end to end.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("albireo-sim", flag.ContinueOnError)
	modelName := fs.String("model", "VGG16", "benchmark model: AlexNet, VGG16, ResNet18, MobileNet")
	estimate := fs.String("estimate", "C", "device estimate: C, M, or A")
	ng := fs.Int("ng", 9, "number of PLCGs (9 or 27 in the paper)")
	layers := fs.Bool("layers", false, "print the per-layer breakdown")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	model, ok := nn.ByName(*modelName)
	if !ok {
		return fmt.Errorf("unknown model %q (want AlexNet, VGG16, ResNet18, or MobileNet)", *modelName)
	}
	cfg := core.DefaultConfig()
	cfg.Ng = *ng
	switch *estimate {
	case "C":
		cfg.Estimate = device.Conservative
	case "M":
		cfg.Estimate = device.Moderate
	case "A":
		cfg.Estimate = device.Aggressive
	default:
		return fmt.Errorf("unknown estimate %q (want C, M, or A)", *estimate)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	census := perf.NewCensus(cfg)
	power := census.Power(cfg.Estimate)
	r := perf.Evaluate(cfg, model)

	fmt.Fprintf(out, "%s on Albireo-%s (Ng=%d, %.0f GHz modulation)\n",
		model.Name, cfg.Estimate, cfg.Ng, cfg.ModulationRate()/1e9)
	fmt.Fprintf(out, "  MACs:        %.3f G\n", float64(model.TotalMACs())/1e9)
	fmt.Fprintf(out, "  parameters:  %.2f M\n", float64(model.TotalParams())/1e6)
	fmt.Fprintf(out, "  chip power:  %.2f W\n", power.Total())
	fmt.Fprintf(out, "  chip area:   %.1f mm^2 (active %.1f mm^2)\n", r.Area*1e6, r.ActiveArea*1e6)
	fmt.Fprintf(out, "  latency:     %.4f ms\n", r.Latency*1e3)
	fmt.Fprintf(out, "  energy:      %.3f mJ\n", r.Energy*1e3)
	fmt.Fprintf(out, "  EDP:         %.4f mJ*ms\n", r.EDP*1e6)
	fmt.Fprintf(out, "  GOPS/mm^2:   %.1f (active: %.1f)\n", r.GOPSPerMM2(), r.GOPSPerMM2Active())
	fmt.Fprintf(out, "  GOPS/W/mm^2: %.2f (active: %.2f)\n", r.GOPSPerWattPerMM2(), r.GOPSPerWattPerMM2Active())

	if *layers {
		fmt.Fprintln(out, "\nper-layer analysis:")
		fmt.Fprintln(out, "layer         kind     cycles       latency(us)  energy(uJ)  MACs(M)")
		for _, lr := range perf.EvaluateLayers(cfg, model) {
			fmt.Fprintf(out, "%-12s  %-7s  %-11d  %11.2f  %10.2f  %7.1f\n",
				lr.Layer.Name, lr.Layer.Kind, lr.Cycles,
				lr.Latency*1e6, lr.Energy*1e6, float64(lr.MACs)/1e6)
		}
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	return nil
}

// writeHeapProfile snapshots the heap after a forced GC, so the
// profile reflects live allocations rather than collectable garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return f.Close()
}
