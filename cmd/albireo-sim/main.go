// Command albireo-sim runs the per-layer performance analysis of a
// CNN on an Albireo design (paper Section IV-A: "We perform a
// per-layer analysis to yield latency, energy, and EDP").
//
// Usage:
//
//	albireo-sim -model VGG16 -estimate C -ng 9
//	albireo-sim -model MobileNet -estimate A -ng 27 -layers
package main

import (
	"flag"
	"fmt"
	"os"

	"albireo/internal/core"
	"albireo/internal/device"
	"albireo/internal/nn"
	"albireo/internal/perf"
)

func main() {
	modelName := flag.String("model", "VGG16", "benchmark model: AlexNet, VGG16, ResNet18, MobileNet")
	estimate := flag.String("estimate", "C", "device estimate: C, M, or A")
	ng := flag.Int("ng", 9, "number of PLCGs (9 or 27 in the paper)")
	layers := flag.Bool("layers", false, "print the per-layer breakdown")
	flag.Parse()

	model, ok := nn.ByName(*modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q (want AlexNet, VGG16, ResNet18, or MobileNet)\n", *modelName)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Ng = *ng
	switch *estimate {
	case "C":
		cfg.Estimate = device.Conservative
	case "M":
		cfg.Estimate = device.Moderate
	case "A":
		cfg.Estimate = device.Aggressive
	default:
		fmt.Fprintf(os.Stderr, "unknown estimate %q (want C, M, or A)\n", *estimate)
		os.Exit(2)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	census := perf.NewCensus(cfg)
	power := census.Power(cfg.Estimate)
	r := perf.Evaluate(cfg, model)

	fmt.Printf("%s on Albireo-%s (Ng=%d, %.0f GHz modulation)\n",
		model.Name, cfg.Estimate, cfg.Ng, cfg.ModulationRate()/1e9)
	fmt.Printf("  MACs:        %.3f G\n", float64(model.TotalMACs())/1e9)
	fmt.Printf("  parameters:  %.2f M\n", float64(model.TotalParams())/1e6)
	fmt.Printf("  chip power:  %.2f W\n", power.Total())
	fmt.Printf("  chip area:   %.1f mm^2 (active %.1f mm^2)\n", r.Area*1e6, r.ActiveArea*1e6)
	fmt.Printf("  latency:     %.4f ms\n", r.Latency*1e3)
	fmt.Printf("  energy:      %.3f mJ\n", r.Energy*1e3)
	fmt.Printf("  EDP:         %.4f mJ*ms\n", r.EDP*1e6)
	fmt.Printf("  GOPS/mm^2:   %.1f (active: %.1f)\n", r.GOPSPerMM2(), r.GOPSPerMM2Active())
	fmt.Printf("  GOPS/W/mm^2: %.2f (active: %.2f)\n", r.GOPSPerWattPerMM2(), r.GOPSPerWattPerMM2Active())

	if *layers {
		fmt.Println("\nper-layer analysis:")
		fmt.Println("layer         kind     cycles       latency(us)  energy(uJ)  MACs(M)")
		for _, lr := range perf.EvaluateLayers(cfg, model) {
			fmt.Printf("%-12s  %-7s  %-11d  %11.2f  %10.2f  %7.1f\n",
				lr.Layer.Name, lr.Layer.Kind, lr.Cycles,
				lr.Latency*1e6, lr.Energy*1e6, float64(lr.MACs)/1e6)
		}
	}
}
