package main

import (
	"strings"
	"testing"
)

func TestRunUnknownModel(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-model", "LeNet99"}, &out); err == nil {
		t.Fatal("want error for unknown model, got nil")
	}
}

func TestRunUnknownEstimate(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-estimate", "Z"}, &out); err == nil {
		t.Fatal("want error for unknown estimate, got nil")
	}
}

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-model", "AlexNet", "-layers"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"AlexNet on Albireo-C", "latency:", "per-layer analysis:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
