package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownModel(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-model", "LeNet99"}, &out); err == nil {
		t.Fatal("want error for unknown model, got nil")
	}
}

func TestRunUnknownEstimate(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-estimate", "Z"}, &out); err == nil {
		t.Fatal("want error for unknown estimate, got nil")
	}
}

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-model", "AlexNet", "-layers"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"AlexNet on Albireo-C", "latency:", "per-layer analysis:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWritesProfiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out strings.Builder
	if err := run([]string{"-model", "AlexNet", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	t.Parallel()
	var out strings.Builder
	if err := run([]string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "p")}, &out); err == nil {
		t.Fatal("want error for unwritable cpuprofile path, got nil")
	}
}
