// Command albireo-lint runs the repo-specific static analyzers in
// internal/lint over the module: determinism (no global rand /
// time.Now in simulation code), unit-safety (SI factors via
// internal/units, no dB/linear mixing), float-equality, exit-hygiene
// (libraries return errors), and goroutine-hygiene (warn-level).
//
// Usage:
//
//	albireo-lint ./...          # whole module
//	albireo-lint ./internal/... # one subtree
//	albireo-lint -strict ./...  # warnings also fail
//	albireo-lint -rules         # describe every rule
//
// Findings print as file:line:col: [rule] message. The exit status is
// non-zero when any error-severity finding (or, with -strict, any
// finding at all) survives //lint:ignore suppression.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"albireo/internal/lint"
)

// errFindings signals a clean run that found problems: already
// reported, so main exits non-zero without another message.
var errFindings = errors.New("albireo-lint: findings reported")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFindings) {
			fmt.Fprintln(os.Stderr, "albireo-lint:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("albireo-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "treat warn-level findings as failures")
	describe := fs.Bool("rules", false, "print every rule's name and doc, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rules := lint.Default()
	if *describe {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-18s %-5s %s\n", r.Name, r.Severity, r.Doc)
		}
		return nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var all []lint.Finding
	for _, pat := range patterns {
		root := strings.TrimSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		findings, err := lint.Run(root, rules)
		if err != nil {
			return err
		}
		all = append(all, findings...)
	}

	errorCount, warnCount := 0, 0
	for _, f := range all {
		if f.Severity == lint.Error {
			errorCount++
			fmt.Fprintln(stdout, f)
		} else {
			warnCount++
			fmt.Fprintf(stdout, "%s (warn)\n", f)
		}
	}
	if errorCount+warnCount > 0 {
		fmt.Fprintf(stderr, "albireo-lint: %d error(s), %d warning(s)\n", errorCount, warnCount)
	}
	if errorCount > 0 || (*strict && warnCount > 0) {
		return errFindings
	}
	return nil
}
