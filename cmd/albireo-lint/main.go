// Command albireo-lint runs the repo-specific static analyzers in
// internal/lint over the module: the type-aware module rules
// (hotpath-alloc-proof, lock-order, map-iteration-determinism) plus
// the per-file rules (determinism, obs-determinism, unit-safety,
// float-equality, exit-hygiene, goroutine-hygiene).
//
// Usage:
//
//	albireo-lint ./...                      # whole module
//	albireo-lint ./internal/...             # one subtree
//	albireo-lint -strict ./...              # warnings also fail
//	albireo-lint -json lint.out ./...       # also write JSON findings
//	albireo-lint -severity goroutine-hygiene=error ./...
//	albireo-lint -rules                     # describe every rule
//
// Findings print as file:line:col: [rule] message. With -json PATH
// the same findings are additionally written to PATH as a JSON
// document (PATH "-" writes JSON to stdout instead of the text
// lines), so CI can archive the machine-readable report. -severity
// overrides a rule's level (comma-separated rule=warn|error pairs).
// The exit status is non-zero when any error-severity finding (or,
// with -strict, any finding at all) survives //lint:ignore
// suppression.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"albireo/internal/lint"
)

// errFindings signals a clean run that found problems: already
// reported, so main exits non-zero without another message.
var errFindings = errors.New("albireo-lint: findings reported")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFindings) {
			fmt.Fprintln(os.Stderr, "albireo-lint:", err)
		}
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable rendering of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: every finding plus the summary
// counts the text mode prints to stderr.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
}

// applySeverities parses "rule=warn|error" comma-separated overrides
// and mutates the matching rules.
func applySeverities(spec string, rules []*lint.Rule) error {
	if spec == "" {
		return nil
	}
	byName := map[string]*lint.Rule{}
	for _, r := range rules {
		byName[r.Name] = r
	}
	for _, pair := range strings.Split(spec, ",") {
		name, level, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad -severity entry %q (want rule=warn|error)", pair)
		}
		r := byName[name]
		if r == nil {
			return fmt.Errorf("-severity names unknown rule %q", name)
		}
		switch level {
		case "warn":
			r.Severity = lint.Warn
		case "error":
			r.Severity = lint.Error
		default:
			return fmt.Errorf("bad -severity level %q for rule %s (want warn or error)", level, name)
		}
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("albireo-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "treat warn-level findings as failures")
	describe := fs.Bool("rules", false, "print every rule's name and doc, then exit")
	jsonPath := fs.String("json", "", "also write findings as JSON to this path (\"-\" for stdout)")
	severities := fs.String("severity", "", "comma-separated rule=warn|error overrides")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rules := lint.Default()
	if err := applySeverities(*severities, rules); err != nil {
		return err
	}
	if *describe {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-26s %-5s %s\n", r.Name, r.Severity, r.Doc)
		}
		return nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var all []lint.Finding
	for _, pat := range patterns {
		root := strings.TrimSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		findings, err := lint.Run(root, rules)
		if err != nil {
			return err
		}
		all = append(all, findings...)
	}

	report := jsonReport{Findings: []jsonFinding{}}
	for _, f := range all {
		report.Findings = append(report.Findings, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			Message:  f.Message,
		})
		if f.Severity == lint.Error {
			report.Errors++
		} else {
			report.Warnings++
		}
	}

	textOut := stdout
	if *jsonPath == "-" {
		textOut = io.Discard // JSON owns stdout
	}
	for _, f := range all {
		if f.Severity == lint.Error {
			fmt.Fprintln(textOut, f)
		} else {
			fmt.Fprintf(textOut, "%s (warn)\n", f)
		}
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, stdout, report); err != nil {
			return err
		}
	}
	if report.Errors+report.Warnings > 0 {
		fmt.Fprintf(stderr, "albireo-lint: %d error(s), %d warning(s)\n", report.Errors, report.Warnings)
	}
	if report.Errors > 0 || (*strict && report.Warnings > 0) {
		return errFindings
	}
	return nil
}

// writeJSON renders the report to path, or to stdout when path is
// "-".
func writeJSON(path string, stdout io.Writer, report jsonReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
