package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albireo/internal/lint"
)

// fixtureTarget points the CLI at the lint package's fixture module,
// which deliberately contains findings for every module rule.
const fixtureTarget = "../../internal/lint/testdata/mod/..."

func TestRunFindingsFailAndPrint(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{fixtureTarget}, &out, &errOut)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run = %v, want errFindings", err)
	}
	for _, want := range []string{
		"[hotpath-alloc-proof]",
		"[lock-order]",
		"[map-iteration-determinism]",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %s findings:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "error(s)") {
		t.Errorf("stderr missing summary: %q", errOut.String())
	}
}

func TestRunJSONArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.out")
	var out, errOut bytes.Buffer
	err := run([]string{"-json", path, fixtureTarget}, &out, &errOut)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run = %v, want errFindings", err)
	}
	data, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("read artifact: %v", readErr)
	}
	var report jsonReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if report.Errors == 0 || len(report.Findings) != report.Errors+report.Warnings {
		t.Errorf("report counts inconsistent: %d findings, %d errors, %d warnings",
			len(report.Findings), report.Errors, report.Warnings)
	}
	rules := map[string]bool{}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		rules[f.Rule] = true
	}
	for _, want := range []string{"hotpath-alloc-proof", "lock-order", "map-iteration-determinism"} {
		if !rules[want] {
			t.Errorf("JSON report missing rule %s", want)
		}
	}
	// Text findings still go to stdout alongside the artifact.
	if !strings.Contains(out.String(), "[lock-order]") {
		t.Error("text output suppressed when -json writes to a file")
	}
}

func TestRunJSONToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-json", "-", fixtureTarget}, &out, &errOut)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run = %v, want errFindings", err)
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not pure JSON with -json -: %v\n%s", err, out.String())
	}
}

func TestSeverityOverride(t *testing.T) {
	// Demoting every module rule to warn makes the fixture run pass
	// without -strict.
	var out, errOut bytes.Buffer
	args := []string{
		"-severity", "hotpath-alloc-proof=warn,lock-order=warn,map-iteration-determinism=warn",
		fixtureTarget,
	}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run with demoted severities = %v, want nil", err)
	}
	if !strings.Contains(out.String(), "(warn)") {
		t.Error("demoted findings should print as warnings")
	}
	// And -strict flips it back to failing.
	out.Reset()
	errOut.Reset()
	if err := run(append([]string{"-strict"}, args...), &out, &errOut); !errors.Is(err, errFindings) {
		t.Fatalf("strict run = %v, want errFindings", err)
	}
}

func TestSeverityOverrideValidation(t *testing.T) {
	cases := []string{"nonsense", "no-such-rule=warn", "lock-order=fatal"}
	for _, spec := range cases {
		if err := applySeverities(spec, lint.Default()); err == nil {
			t.Errorf("applySeverities(%q) = nil, want error", spec)
		}
	}
	if err := applySeverities("goroutine-hygiene=error, lock-order=warn", lint.Default()); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRulesListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-rules"}, &out, &errOut); err != nil {
		t.Fatalf("run -rules = %v", err)
	}
	for _, want := range []string{"hotpath-alloc-proof", "lock-order", "map-iteration-determinism", "determinism"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-rules listing missing %s", want)
		}
	}
}
